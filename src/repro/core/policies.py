"""Aging-mitigation policies.

A *policy* is the algorithm that decides how a weight block is transformed on
its way into the on-chip weight memory (and transformed back on the way out).
All policies implement the same ``encode_block`` / ``decode_block`` interface
so the explicit memory simulator, the fast aging simulator and the functional
accelerator path can treat them interchangeably.  The four policies evaluated
in the paper (Sec. V-B) are provided:

* :class:`NoMitigationPolicy` — weights are stored verbatim;
* :class:`PeriodicInversionPolicy` — the classic duty-cycle balancing scheme:
  every other write is stored inverted.  The hardware keeps a single toggle
  flip-flop on the write path (``granularity="write"``), which in a DNN
  accelerator aliases with the periodic reuse of the same weights; the
  idealised per-location variant (``granularity="location"``) is also
  provided for the Sec. III-B analysis;
* :class:`BarrelShifterPolicy` — rotates each word by a write-counter driven
  amount (register-file style NBTI balancing);
* :class:`DnnLifePolicy` — the proposed scheme: every write is inverted or
  not according to a TRBG-generated enable bit, optionally corrected by the
  M-bit bias-balancing register.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bias_balancer import BiasBalancingRegister
from repro.core.controller import AgingMitigationController
from repro.core.trbg import IdealTrbg, TrueRandomBitGenerator
from repro.quantization.bitops import invert_words
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int


class MitigationPolicy(abc.ABC):
    """Common interface of all aging-mitigation policies."""

    #: Short machine-readable identifier (used in reports and factories).
    name: str = "abstract"

    @abc.abstractmethod
    def encode_block(self, words: np.ndarray, block_index: int,
                     start_row: int = 0) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Encode one block of words before it is written to the memory.

        Parameters
        ----------
        words:
            Unsigned words of the block, in row order.
        block_index:
            Global index of the block within the current inference.
        start_row:
            First memory row the block will occupy (FIFO tile offset).

        Returns
        -------
        (encoded_words, metadata)
            ``metadata`` is whatever the matching decoder needs (per-word
            enable bits, shift amounts, ...), or ``None``.
        """

    @abc.abstractmethod
    def decode_block(self, encoded_words: np.ndarray,
                     metadata: Optional[np.ndarray]) -> np.ndarray:
        """Invert :meth:`encode_block` given the stored metadata."""

    def reset(self) -> None:
        """Reset all internal counters/state (start of a fresh lifetime)."""

    @property
    def metadata_bits_per_word(self) -> float:
        """Storage overhead of the metadata, in bits per weight word."""
        return 0.0

    def describe(self) -> Dict[str, object]:
        """Machine-readable description used in experiment reports."""
        return {"policy": self.name}

    @property
    def display_name(self) -> str:
        """Human-readable name used in tables."""
        return self.name.replace("_", " ")


class NoMitigationPolicy(MitigationPolicy):
    """Baseline: weights are written unmodified."""

    name = "none"

    def encode_block(self, words: np.ndarray, block_index: int,
                     start_row: int = 0) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        return np.asarray(words, dtype=np.uint64).reshape(-1).copy(), None

    def decode_block(self, encoded_words: np.ndarray,
                     metadata: Optional[np.ndarray]) -> np.ndarray:
        return np.asarray(encoded_words, dtype=np.uint64).reshape(-1).copy()


class PeriodicInversionPolicy(MitigationPolicy):
    """Classic periodic-inversion duty-cycle balancing.

    ``granularity="write"`` models the realistic hardware: a single toggle
    bit flips after every word written to the memory, so the inversion state
    a particular cell observes is a function of its position in the write
    stream — and because the same stream repeats every inference, the state
    aliases and the balancing breaks down (the failure mode the paper points
    out for DNN workloads).

    ``granularity="location"`` models an idealised scheme with one toggle bit
    per memory row (every other write *to the same location* is inverted),
    used for the Sec. III-B analysis.
    """

    def __init__(self, word_bits: int, granularity: str = "write"):
        check_positive_int(word_bits, "word_bits")
        if granularity not in ("write", "location"):
            raise ValueError("granularity must be 'write' or 'location'")
        self.word_bits = word_bits
        self.granularity = granularity
        self.name = ("inversion" if granularity == "write" else "inversion_per_location")
        self._write_counter = 0
        # Per-row toggle counters, grown on demand: a block write touches a
        # contiguous row range, so the whole update is two vectorized slice
        # operations instead of per-row dict traffic on the hot write path.
        self._location_counters = np.zeros(0, dtype=np.int64)

    def reset(self) -> None:
        self._write_counter = 0
        self._location_counters = np.zeros(0, dtype=np.int64)

    def _parities(self, num_words: int, start_row: int) -> np.ndarray:
        if self.granularity == "write":
            parities = (self._write_counter + np.arange(num_words)) % 2
            self._write_counter += num_words
            return parities.astype(np.uint8)
        end_row = start_row + num_words
        if end_row > self._location_counters.size:
            grown = np.zeros(end_row, dtype=np.int64)
            grown[:self._location_counters.size] = self._location_counters
            self._location_counters = grown
        counters = self._location_counters[start_row:end_row]
        parities = (counters % 2).astype(np.uint8)
        counters += 1
        return parities

    def encode_block(self, words: np.ndarray, block_index: int,
                     start_row: int = 0) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        flat = np.asarray(words, dtype=np.uint64).reshape(-1)
        parities = self._parities(flat.size, start_row)
        inverted = invert_words(flat, self.word_bits)
        encoded = np.where(parities.astype(bool), inverted, flat)
        return encoded, parities

    def decode_block(self, encoded_words: np.ndarray,
                     metadata: Optional[np.ndarray]) -> np.ndarray:
        flat = np.asarray(encoded_words, dtype=np.uint64).reshape(-1)
        parities = np.asarray(metadata, dtype=np.uint8).reshape(-1)
        inverted = invert_words(flat, self.word_bits)
        return np.where(parities.astype(bool), inverted, flat)

    @property
    def metadata_bits_per_word(self) -> float:
        # The decoder regenerates the parity from its own mirrored counter in
        # hardware; no stored metadata is required.
        return 0.0

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name, "granularity": self.granularity,
                "word_bits": self.word_bits}


class BarrelShifterPolicy(MitigationPolicy):
    """Bit-rotation balancing (register-file style).

    Every written word is rotated left by an amount taken from a free-running
    write counter, so that over many writes each cell is exposed to bits from
    every position of the word.  The scheme needs a barrel shifter on both the
    write and read paths (the expensive part, see Table II) and only helps
    when the *average* bit probability across positions is close to 0.5.
    """

    def __init__(self, word_bits: int):
        check_positive_int(word_bits, "word_bits")
        self.word_bits = word_bits
        self.name = "barrel_shifter"
        self._write_counter = 0

    def reset(self) -> None:
        self._write_counter = 0

    def _shifts(self, num_words: int) -> np.ndarray:
        shifts = (self._write_counter + np.arange(num_words)) % self.word_bits
        self._write_counter += num_words
        return shifts.astype(np.uint8)

    def encode_block(self, words: np.ndarray, block_index: int,
                     start_row: int = 0) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        flat = np.asarray(words, dtype=np.uint64).reshape(-1)
        shifts = self._shifts(flat.size)
        encoded = _rotate_left_per_word(flat, shifts, self.word_bits)
        return encoded, shifts

    def decode_block(self, encoded_words: np.ndarray,
                     metadata: Optional[np.ndarray]) -> np.ndarray:
        flat = np.asarray(encoded_words, dtype=np.uint64).reshape(-1)
        shifts = np.asarray(metadata, dtype=np.uint8).reshape(-1)
        inverse = (self.word_bits - shifts.astype(np.int64)) % self.word_bits
        return _rotate_left_per_word(flat, inverse.astype(np.uint8), self.word_bits)

    @property
    def metadata_bits_per_word(self) -> float:
        # As with inversion, the read-side shifter mirrors the write counter.
        return 0.0

    def describe(self) -> Dict[str, object]:
        return {"policy": self.name, "word_bits": self.word_bits}


class DnnLifePolicy(MitigationPolicy):
    """The proposed DNN-Life aging-mitigation scheme (paper Sec. IV).

    For every group of ``words_per_enable`` words written, the aging
    mitigation controller draws a fresh enable bit from the TRBG (optionally
    corrected by the M-bit bias-balancing register); the Write Data Encoder
    stores the group inverted when the enable bit is 1 and the enable bit is
    kept as metadata for the Read Data Decoder.
    """

    def __init__(self, word_bits: int,
                 controller: Optional[AgingMitigationController] = None,
                 trbg_bias: float = 0.5, bias_balancing: bool = True,
                 balance_register_bits: int = 4, words_per_enable: int = 1,
                 seed: SeedLike = None):
        check_positive_int(word_bits, "word_bits")
        check_positive_int(words_per_enable, "words_per_enable")
        self.word_bits = word_bits
        self.words_per_enable = words_per_enable
        if controller is None:
            balancer = (BiasBalancingRegister(balance_register_bits)
                        if bias_balancing else None)
            controller = AgingMitigationController(
                trbg=IdealTrbg(bias=trbg_bias, seed=seed), bias_balancer=balancer)
        self.controller = controller
        self.name = "dnn_life"

    def reset(self) -> None:
        self.controller.reset()

    def encode_block(self, words: np.ndarray, block_index: int,
                     start_row: int = 0) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        flat = np.asarray(words, dtype=np.uint64).reshape(-1)
        self.controller.new_data_block()
        num_groups = (flat.size + self.words_per_enable - 1) // self.words_per_enable
        group_enables = self.controller.enable_bits(num_groups)
        enables = np.repeat(group_enables, self.words_per_enable)[:flat.size]
        inverted = invert_words(flat, self.word_bits)
        encoded = np.where(enables.astype(bool), inverted, flat)
        return encoded, enables

    def decode_block(self, encoded_words: np.ndarray,
                     metadata: Optional[np.ndarray]) -> np.ndarray:
        flat = np.asarray(encoded_words, dtype=np.uint64).reshape(-1)
        enables = np.asarray(metadata, dtype=np.uint8).reshape(-1)
        inverted = invert_words(flat, self.word_bits)
        return np.where(enables.astype(bool), inverted, flat)

    @property
    def metadata_bits_per_word(self) -> float:
        """One enable bit is stored per group of ``words_per_enable`` words."""
        return 1.0 / self.words_per_enable

    @property
    def trbg_bias(self) -> float:
        """Nominal bias of the underlying TRBG."""
        return self.controller.trbg.nominal_bias

    @property
    def effective_bias(self) -> float:
        """Long-run inversion probability after bias balancing."""
        return self.controller.effective_bias

    @property
    def has_bias_balancing(self) -> bool:
        """Whether the M-bit bias-balancing register is active."""
        return self.controller.has_bias_balancing

    def describe(self) -> Dict[str, object]:
        description = {"policy": self.name, "word_bits": self.word_bits,
                       "words_per_enable": self.words_per_enable}
        description.update(self.controller.describe())
        return description

    @property
    def display_name(self) -> str:
        suffix = "with bias balancing" if self.has_bias_balancing else "without bias balancing"
        return f"DNN-Life (bias={self.trbg_bias:g}, {suffix})"


def _rotate_left_per_word(words: np.ndarray, shifts: np.ndarray, word_bits: int) -> np.ndarray:
    """Rotate every word left by its own shift amount (vectorized)."""
    values = np.asarray(words, dtype=np.uint64)
    amounts = np.asarray(shifts, dtype=np.uint64) % np.uint64(word_bits)
    mask = np.uint64((1 << word_bits) - 1) if word_bits < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        left = (values << amounts) & mask
        # Avoid shifting by the full word width (undefined): reduce modulo the
        # width and mask out the contribution where the shift amount is zero.
        right_shift = (np.uint64(word_bits) - amounts) % np.uint64(word_bits)
        right = np.where(amounts > 0, (values & mask) >> right_shift, np.uint64(0))
    return (left | right).astype(np.uint64)


#: Policy names accepted by :func:`make_policy` — the canonical list every
#: schema (experiments, scenario phase specs) validates against.
POLICY_NAMES = ("none", "inversion", "inversion_per_location",
                "barrel_shifter", "dnn_life")


def make_policy(name: str, word_bits: int, seed: SeedLike = None, **kwargs) -> MitigationPolicy:
    """Factory: build a policy from its registry name.

    Supported names: ``none``, ``inversion``, ``inversion_per_location``,
    ``barrel_shifter`` and ``dnn_life`` (extra keyword arguments are forwarded
    to :class:`DnnLifePolicy`).
    """
    if name == "none":
        return NoMitigationPolicy()
    if name == "inversion":
        return PeriodicInversionPolicy(word_bits, granularity="write")
    if name == "inversion_per_location":
        return PeriodicInversionPolicy(word_bits, granularity="location")
    if name == "barrel_shifter":
        return BarrelShifterPolicy(word_bits)
    if name == "dnn_life":
        # By default one enable bit covers one 64-bit memory transfer (the
        # datapath width of the Table II WDE designs), which is what keeps the
        # metadata overhead negligible.
        kwargs.setdefault("words_per_enable", max(64 // word_bits, 1))
        return DnnLifePolicy(word_bits, seed=seed, **kwargs)
    raise ValueError(
        f"unknown policy '{name}' (expected one of: none, inversion, "
        f"inversion_per_location, barrel_shifter, dnn_life)")


def default_policy_suite(word_bits: int, seed: SeedLike = 0) -> List[MitigationPolicy]:
    """The six policy configurations compared in the paper's Fig. 9.

    1. no mitigation; 2. periodic inversion; 3. barrel shifter;
    4. DNN-Life with an ideal TRBG (bias 0.5);
    5. DNN-Life with a biased TRBG (0.7) and no bias balancing;
    6. DNN-Life with a biased TRBG (0.7) and the 4-bit bias-balancing register.
    """
    words_per_enable = max(64 // word_bits, 1)
    return [
        NoMitigationPolicy(),
        PeriodicInversionPolicy(word_bits, granularity="write"),
        BarrelShifterPolicy(word_bits),
        DnnLifePolicy(word_bits, trbg_bias=0.5, bias_balancing=False,
                      words_per_enable=words_per_enable, seed=seed),
        DnnLifePolicy(word_bits, trbg_bias=0.7, bias_balancing=False,
                      words_per_enable=words_per_enable, seed=seed),
        DnnLifePolicy(word_bits, trbg_bias=0.7, bias_balancing=True,
                      words_per_enable=words_per_enable, seed=seed),
    ]
