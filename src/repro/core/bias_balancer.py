"""The M-bit bias-balancing register of the aging controller.

A practical TRBG may emit '1' with a probability different from 0.5.  The
DNN-Life controller compensates by keeping an M-bit counter that is
incremented by the *new data block* signal; the counter's most significant
bit is XOR-ed with the TRBG output before it is used as the enable signal.
Because the MSB spends exactly half of every full counter period at '1', the
long-run probability of the effective enable signal is

    0.5 * bias + 0.5 * (1 - bias) = 0.5

regardless of the TRBG bias — which is what restores optimal duty-cycle
balancing in the Bias = 0.7 experiments of Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int


class BiasBalancingRegister:
    """M-bit counter whose MSB periodically inverts the TRBG output."""

    def __init__(self, num_bits: int = 4):
        check_positive_int(num_bits, "num_bits")
        self.num_bits = num_bits
        self._count = 0

    @property
    def period(self) -> int:
        """Number of increments for a full counter wrap (2^M)."""
        return 1 << self.num_bits

    @property
    def half_period(self) -> int:
        """Number of increments after which the MSB toggles (2^(M-1))."""
        return 1 << (self.num_bits - 1)

    @property
    def count(self) -> int:
        """Current counter value (0 .. 2^M - 1)."""
        return self._count

    @property
    def phase(self) -> int:
        """Current MSB of the counter — the inversion phase applied to the TRBG."""
        return (self._count >> (self.num_bits - 1)) & 0x1

    def tick(self) -> int:
        """Increment the counter (new data block signal); returns the new phase."""
        self._count = (self._count + 1) % self.period
        return self.phase

    def apply(self, trbg_bit: int) -> int:
        """Apply the current phase to one TRBG bit (no counter increment)."""
        if trbg_bit not in (0, 1):
            raise ValueError(f"trbg_bit must be 0 or 1, got {trbg_bit}")
        return trbg_bit ^ self.phase

    def apply_bits(self, trbg_bits: np.ndarray) -> np.ndarray:
        """Apply the current phase to an array of TRBG bits (vectorized)."""
        bits = np.asarray(trbg_bits, dtype=np.uint8)
        if bits.size and int(bits.max()) > 1:
            raise ValueError("trbg_bits must contain only 0/1 values")
        return bits ^ np.uint8(self.phase)

    def reset(self) -> None:
        """Reset the counter to zero (power-on state)."""
        self._count = 0

    def phase_sequence(self, start_count: int, num_ticks: int) -> np.ndarray:
        """Phase observed after each of ``num_ticks`` ticks from ``start_count``.

        Utility used by the fast aging simulator to reproduce the exact
        deterministic phase pattern without stepping the register one tick at
        a time.
        """
        if num_ticks < 0:
            raise ValueError("num_ticks must be non-negative")
        counts = (np.arange(1, num_ticks + 1) + int(start_count)) % self.period
        return ((counts >> (self.num_bits - 1)) & 0x1).astype(np.uint8)
