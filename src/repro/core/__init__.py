"""DNN-Life core: the paper's contribution.

This package implements the aging-mitigation micro-architecture of Sec. IV
and the aging-analysis machinery built around it:

* :mod:`repro.core.trbg` — True Random Bit Generator models (ideal biased
  source and a 5-stage ring-oscillator model, matching the hardware
  realisation mentioned in Sec. V-C);
* :mod:`repro.core.bias_balancer` — the M-bit bias-balancing register that
  periodically inverts the TRBG output;
* :mod:`repro.core.controller` — the Aging Mitigation Controller generating
  the enable (E) signal for every write;
* :mod:`repro.core.encoder` — the Write Data Encoder (WDE) and Read Data
  Decoder (RDD), XOR-based inversion transducers around the weight memory;
* :mod:`repro.core.policies` — aging-mitigation policies: no mitigation,
  periodic inversion, barrel-shifter rotation and the proposed DNN-Life
  scheme, all sharing one encode/decode interface;
* :mod:`repro.core.simulation` — duty-cycle/aging simulators (an exact
  explicit engine and a vectorized fast engine) that evaluate a policy on an
  accelerator weight-write stream;
* :mod:`repro.core.framework` — the :class:`~repro.core.framework.DnnLife`
  end-to-end API used by the examples and benchmarks.
"""

from repro.core.bias_balancer import BiasBalancingRegister
from repro.core.controller import AgingMitigationController
from repro.core.encoder import ReadDataDecoder, WriteDataEncoder
from repro.core.framework import DnnLife, PolicyComparison
from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    MitigationPolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
    default_policy_suite,
    make_policy,
)
from repro.core.simulation import (
    AgingResult,
    AgingSimulator,
    ExplicitAgingSimulator,
)
from repro.core.trbg import IdealTrbg, RingOscillatorTrbg, TrueRandomBitGenerator

__all__ = [
    "BiasBalancingRegister",
    "AgingMitigationController",
    "ReadDataDecoder",
    "WriteDataEncoder",
    "DnnLife",
    "PolicyComparison",
    "BarrelShifterPolicy",
    "DnnLifePolicy",
    "MitigationPolicy",
    "NoMitigationPolicy",
    "PeriodicInversionPolicy",
    "default_policy_suite",
    "make_policy",
    "AgingResult",
    "AgingSimulator",
    "ExplicitAgingSimulator",
    "IdealTrbg",
    "RingOscillatorTrbg",
    "TrueRandomBitGenerator",
]
