"""True Random Bit Generator (TRBG) models.

The DNN-Life aging controller draws one random bit per write to decide whether
the data is stored inverted.  The paper realises the TRBG as a free-running
5-stage ring oscillator sampled by the (much slower) system clock; practical
TRBGs of this kind exhibit a *bias* — they emit '1' with a probability that
can deviate from 0.5 — which is exactly the non-ideality the bias-balancing
register of the controller compensates (the Bias = 0.7 experiments of Fig. 9).

Two models are provided:

* :class:`IdealTrbg` — i.i.d. Bernoulli bits with a configurable bias;
* :class:`RingOscillatorTrbg` — a behavioural model of the ring-oscillator
  entropy source: the oscillator phase advances by a nominal amount plus
  accumulated jitter between samples, and the sampled bit is the oscillator
  output level.  Its empirical bias is controlled by the oscillator duty
  cycle, mimicking how device asymmetries bias real ring-oscillator TRBGs.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.utils.rng import RngMixin, SeedLike
from repro.utils.validation import check_positive, check_probability


class TrueRandomBitGenerator(abc.ABC):
    """Interface shared by all TRBG models."""

    @abc.abstractmethod
    def bits(self, count: int) -> np.ndarray:
        """Draw ``count`` bits as a ``uint8`` array of 0/1 values."""

    def next_bit(self) -> int:
        """Draw a single bit."""
        return int(self.bits(1)[0])

    @property
    @abc.abstractmethod
    def nominal_bias(self) -> float:
        """Long-run probability of emitting a '1'."""


class IdealTrbg(RngMixin, TrueRandomBitGenerator):
    """I.i.d. Bernoulli bit source with configurable bias.

    ``bias`` is the probability of producing a '1'.  ``bias=0.5`` is the ideal
    case; the paper also evaluates ``bias=0.7`` to show the effect of a
    non-ideal entropy source.
    """

    def __init__(self, bias: float = 0.5, seed: SeedLike = None):
        check_probability(bias, "bias")
        self._bias = float(bias)
        self._init_rng(seed)
        self._draws = 0

    def bits(self, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._draws += count
        return (self.rng.random(count) < self._bias).astype(np.uint8)

    @property
    def nominal_bias(self) -> float:
        return self._bias

    @property
    def draws(self) -> int:
        """Total number of bits drawn so far (used by energy accounting)."""
        return self._draws


class RingOscillatorTrbg(RngMixin, TrueRandomBitGenerator):
    """Behavioural model of a sampled ring-oscillator TRBG.

    A ``num_stages``-stage ring oscillator toggles with a period of
    ``2 * num_stages`` gate delays.  Between two samples of the system clock
    the oscillator advances by a large, jittery number of gate delays; the
    sampled bit is '1' whenever the oscillator output is in the high phase of
    its period.  ``duty_cycle`` sets the fraction of the period the output is
    high, modelling rise/fall asymmetry — the physical origin of TRBG bias.
    """

    def __init__(self, num_stages: int = 5, cycles_per_sample: float = 1000.0,
                 jitter_fraction: float = 0.02, duty_cycle: float = 0.5,
                 seed: SeedLike = None):
        if num_stages < 3 or num_stages % 2 == 0:
            raise ValueError("a ring oscillator needs an odd number of stages >= 3")
        check_positive(cycles_per_sample, "cycles_per_sample")
        check_positive(jitter_fraction, "jitter_fraction")
        check_probability(duty_cycle, "duty_cycle")
        self.num_stages = num_stages
        self.cycles_per_sample = float(cycles_per_sample)
        self.jitter_fraction = float(jitter_fraction)
        self.duty_cycle = float(duty_cycle)
        self._phase = 0.0
        self._init_rng(seed)

    def bits(self, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.uint8)
        # Phase advance per sample, in oscillator periods, with accumulated
        # Gaussian jitter (jitter grows with the number of elapsed cycles).
        jitter_sigma = self.jitter_fraction * np.sqrt(self.cycles_per_sample)
        advances = self.cycles_per_sample + self.rng.normal(0.0, jitter_sigma, size=count)
        phases = (self._phase + np.cumsum(advances)) % 1.0
        self._phase = float(phases[-1])
        return (phases < self.duty_cycle).astype(np.uint8)

    @property
    def nominal_bias(self) -> float:
        return self.duty_cycle

    @property
    def oscillation_period_gate_delays(self) -> int:
        """Oscillation period expressed in gate delays (2 x stages)."""
        return 2 * self.num_stages


def make_trbg(bias: float = 0.5, seed: SeedLike = None,
              model: str = "ideal") -> TrueRandomBitGenerator:
    """Factory used by experiment configuration files.

    ``model`` is ``"ideal"`` or ``"ring_oscillator"``.
    """
    if model == "ideal":
        return IdealTrbg(bias=bias, seed=seed)
    if model == "ring_oscillator":
        return RingOscillatorTrbg(duty_cycle=bias, seed=seed)
    raise ValueError(f"unknown TRBG model '{model}' (expected 'ideal' or 'ring_oscillator')")
