"""Write Data Encoder (WDE) and Read Data Decoder (RDD).

The WDE sits between the off-chip weight stream and the on-chip weight memory
(paper Fig. 4a) and, when its enable input ``E`` is asserted, stores the
bitwise complement of the incoming word; the RDD applies the same XOR on the
read path, restoring the original value before it reaches the processing
array.  Because XOR-with-all-ones is an involution, WDE and RDD are the same
circuit, which is one of the design's cost advantages.

The classes here are *functional* models operating on numpy word arrays; the
hardware cost of the corresponding circuits is modelled in
:mod:`repro.hwsynth`.
"""

from __future__ import annotations

import numpy as np

from repro.quantization.bitops import invert_words
from repro.utils.validation import check_positive_int


class WriteDataEncoder:
    """XOR-based inversion encoder in front of the weight memory."""

    def __init__(self, word_bits: int):
        check_positive_int(word_bits, "word_bits")
        if word_bits > 64:
            raise ValueError("word_bits must not exceed 64")
        self.word_bits = word_bits
        self._words_encoded = 0
        self._words_inverted = 0

    def encode(self, words: np.ndarray, enable: np.ndarray) -> np.ndarray:
        """Encode a batch of words.

        Parameters
        ----------
        words:
            Unsigned integer words (any shape, flattened internally).
        enable:
            Either a scalar 0/1 applied to all words, or a 0/1 array with one
            enable bit per word.

        Returns
        -------
        numpy.ndarray
            ``uint64`` array of the same length where words with ``enable=1``
            are bitwise complemented within ``word_bits`` bits.
        """
        flat = np.asarray(words, dtype=np.uint64).reshape(-1)
        enable_bits = np.asarray(enable, dtype=np.uint8).reshape(-1)
        if enable_bits.size == 1:
            enable_bits = np.full(flat.size, int(enable_bits[0]), dtype=np.uint8)
        if enable_bits.size != flat.size:
            raise ValueError(
                f"enable must be scalar or have one bit per word "
                f"({flat.size} words, {enable_bits.size} enable bits)"
            )
        if enable_bits.size and int(enable_bits.max()) > 1:
            raise ValueError("enable bits must be 0 or 1")
        inverted = invert_words(flat, self.word_bits)
        encoded = np.where(enable_bits.astype(bool), inverted, flat)
        self._words_encoded += flat.size
        self._words_inverted += int(enable_bits.sum(dtype=np.int64))
        return encoded

    @property
    def words_encoded(self) -> int:
        """Total number of words that passed through the encoder."""
        return self._words_encoded

    @property
    def words_inverted(self) -> int:
        """Number of words stored inverted (XOR activity, for energy models)."""
        return self._words_inverted

    @property
    def inversion_rate(self) -> float:
        """Fraction of encoded words that were inverted."""
        if self._words_encoded == 0:
            return 0.0
        return self._words_inverted / self._words_encoded

    def reset_counters(self) -> None:
        """Reset the activity counters."""
        self._words_encoded = 0
        self._words_inverted = 0


class ReadDataDecoder(WriteDataEncoder):
    """XOR-based decoder after the weight memory.

    Identical datapath to the WDE (XOR is self-inverse); kept as a separate
    class so read-path and write-path activity can be accounted separately.
    """

    def decode(self, words: np.ndarray, enable: np.ndarray) -> np.ndarray:
        """Decode previously encoded words using the stored metadata bits."""
        return self.encode(words, enable)


def roundtrip_is_transparent(words: np.ndarray, enable: np.ndarray, word_bits: int) -> bool:
    """Check WDE -> memory -> RDD transparency for a batch of words.

    Used by tests and by the quickstart example to demonstrate that DNN-Life
    never changes the values the processing array consumes.
    """
    encoder = WriteDataEncoder(word_bits)
    decoder = ReadDataDecoder(word_bits)
    encoded = encoder.encode(words, enable)
    decoded = decoder.decode(encoded, enable)
    return bool(np.array_equal(decoded, np.asarray(words, dtype=np.uint64).reshape(-1)))
