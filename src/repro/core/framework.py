"""The DNN-Life end-to-end framework (paper Fig. 3).

:class:`DnnLife` ties the substrates together behind one small API:

* **design time** — analyze the bit-level distribution of a DNN's weights
  under a data representation (Sec. III), pick a mitigation policy and the
  corresponding micro-architecture configuration;
* **run time** — simulate the aging of the accelerator's on-chip weight
  memory over a period of repeated inferences under that policy (Sec. V) and
  account the energy overhead of the mitigation hardware.

Example
-------
>>> from repro import DnnLife
>>> from repro.nn import build_model, attach_synthetic_weights
>>> network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
>>> framework = DnnLife(network, data_format="int8_symmetric", num_inferences=20)
>>> comparison = framework.compare_policies()
>>> print(comparison.table().render())  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.accelerator.baseline import BaselineAccelerator
from repro.aging.snm import SnmDegradationModel, default_degradation_bins, default_snm_model
from repro.core.policies import (
    MitigationPolicy,
    default_policy_suite,
    make_policy,
)
from repro.core.simulation import AgingResult, AgingSimulator
from repro.nn.network import Network
from repro.nn.weights import attach_synthetic_weights
from repro.quantization.bitops import bit_probabilities
from repro.quantization.formats import DataFormat, get_format
from repro.utils.rng import SeedLike
from repro.utils.tables import AsciiTable
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guards, typing only
    from repro.accelerator.scheduler import WeightStreamScheduler
    from repro.accelerator.tpu import TpuLikeNpu
    from repro.experiments.common import ExperimentScale
    from repro.leveling.remap import WearLeveler
    from repro.scenario.driver import ScenarioResult
    from repro.scenario.operating_point import RetentionModel
    from repro.scenario.phases import LifetimeScenario

    #: The accelerators sharing the ``build_scheduler`` /
    #: ``weight_memory_energy_model`` duck-typed surface.
    AnyAccelerator = Union[BaselineAccelerator, TpuLikeNpu]


@dataclass
class PolicyComparison:
    """Results of evaluating several mitigation policies on one workload."""

    workload: Dict[str, object]
    results: Dict[str, AgingResult] = field(default_factory=dict)

    def add(self, label: str, result: AgingResult) -> None:
        """Add one policy's result under a unique label."""
        if label in self.results:
            raise ValueError(f"a result labelled '{label}' already exists")
        self.results[label] = result

    def labels(self) -> List[str]:
        """Labels of all evaluated policies, in insertion order."""
        return list(self.results)

    def table(self) -> AsciiTable:
        """Summary table: one row per policy (mean / max SNM degradation)."""
        table = AsciiTable(
            ["policy", "mean SNM deg. [%]", "max SNM deg. [%]",
             "% cells near best", "% cells near worst"],
            title=(f"{self.workload.get('network')} on {self.workload.get('accelerator')} "
                   f"({self.workload.get('data_format')})"),
        )
        for label, result in self.results.items():
            summary = result.summary()
            table.add_row([
                label,
                summary["mean_snm_degradation_percent"],
                summary["max_snm_degradation_percent"],
                summary["percent_cells_near_best"],
                summary["percent_cells_near_worst"],
            ])
        return table

    def histograms(self, bin_edges: Optional[np.ndarray] = None) -> Dict[str, Dict[str, object]]:
        """Fig. 9/11 style histograms for every policy."""
        output: Dict[str, Dict[str, object]] = {}
        for label, result in self.results.items():
            percentages, edges, labels = result.histogram(bin_edges)
            output[label] = {
                "percent_of_cells": percentages.tolist(),
                "bin_edges": np.asarray(edges).tolist(),
                "bin_labels": labels,
            }
        return output

    def best_policy(self) -> str:
        """Label of the policy with the lowest mean SNM degradation."""
        if not self.results:
            raise ValueError("no results recorded")
        return min(self.results,
                   key=lambda label: float(self.results[label].snm_degradation().mean()))

    def summary(self) -> Dict[str, object]:
        """Machine-readable summary of the whole comparison."""
        return {
            "workload": self.workload,
            "policies": {label: result.summary() for label, result in self.results.items()},
            "best_policy": self.best_policy(),
        }


class DnnLife:
    """End-to-end aging analysis and mitigation for one workload.

    Beyond the classic single-stream view (one network inferred repeatedly),
    the framework accepts a :class:`~repro.scenario.phases.LifetimeScenario`:
    a multi-phase stress timeline (model swaps, idle retention stretches,
    thermal corners) evaluated by :meth:`simulate_scenario`.  When a scenario
    is configured at construction time, :meth:`simulate` routes to it and
    returns the timeline's *effective* aging result.

    A scenario *replaces* the single-workload run-time configuration: its
    phases name their own model-zoo networks, data formats and mitigation
    policies, so ``network``, ``data_format`` and ``num_inferences`` then
    only govern the design-time analysis (:meth:`bit_distribution`) and the
    classic API — they are not consulted by the scenario engines.
    """

    def __init__(self, network: Network, accelerator: Optional["AnyAccelerator"] = None,
                 data_format: Union[str, DataFormat] = "int8_symmetric",
                 num_inferences: int = 100, seed: SeedLike = 0,
                 snm_model: Optional[SnmDegradationModel] = None,
                 aging_years: float = 7.0,
                 scenario: Optional["LifetimeScenario"] = None):
        self.network = network
        self.accelerator = accelerator if accelerator is not None else BaselineAccelerator()
        self.data_format = get_format(data_format) if isinstance(data_format, str) else data_format
        self.num_inferences = check_positive_int(num_inferences, "num_inferences")
        self.seed = seed
        self.snm_model = snm_model or default_snm_model()
        self.aging_years = aging_years
        self.scenario = scenario
        if not network.has_weights_attached:
            attach_synthetic_weights(network, seed=0 if seed is None else int(np.abs(hash(seed))) % (2**31))

    # ------------------------------------------------------------------ #
    # Design-time analysis (Sec. III)
    # ------------------------------------------------------------------ #
    def weight_words(self) -> np.ndarray:
        """All weight words of the network under the configured data format."""
        return self.data_format.to_words(self.network.flat_weights())

    def bit_distribution(self) -> np.ndarray:
        """P(bit = 1) at every bit-location of a weight word (Fig. 6)."""
        return bit_probabilities(self.weight_words(), self.data_format.word_bits)

    def average_bit_probability(self) -> float:
        """Average probability of a '1' across all bit-locations."""
        return float(np.mean(self.bit_distribution()))

    # ------------------------------------------------------------------ #
    # Run-time simulation (Sec. V)
    # ------------------------------------------------------------------ #
    def build_scheduler(self) -> "WeightStreamScheduler":
        """Weight-stream scheduler of the configured accelerator/workload."""
        return self.accelerator.build_scheduler(self.network, self.data_format)

    def simulate(self, policy: Union[str, MitigationPolicy, None] = None,
                 **policy_kwargs) -> AgingResult:
        """Simulate aging under one mitigation policy.

        ``policy`` is a :class:`MitigationPolicy`, a policy name accepted by
        :func:`repro.core.policies.make_policy`, or ``None`` for the proposed
        DNN-Life policy with default settings.

        With a scenario configured, the call routes to
        :meth:`simulate_scenario` and returns the timeline's effective
        result; the phases carry their own policies, so passing one here is
        an error.
        """
        if self.scenario is not None:
            if policy is not None or policy_kwargs:
                raise ValueError(
                    "this DnnLife is configured with a lifetime scenario; its "
                    "phases carry their own mitigation policies — call "
                    "simulate_scenario() or drop the policy argument")
            return self.simulate_scenario().effective
        resolved = self._resolve_policy(policy, **policy_kwargs)
        simulator = AgingSimulator(
            scheduler=self.build_scheduler(),
            policy=resolved,
            num_inferences=self.num_inferences,
            seed=self.seed,
            snm_model=self.snm_model,
        )
        result = simulator.run()
        result.years = self.aging_years
        return result

    def compare_policies(self, policies: Optional[Iterable[Union[str, MitigationPolicy]]] = None
                         ) -> PolicyComparison:
        """Evaluate several policies (defaults to the paper's Fig. 9 suite).

        Policy comparison is a single-workload analysis; a
        scenario-configured framework is rejected up front (its phases carry
        their own policies, so there is no one workload to compare on).
        """
        if self.scenario is not None:
            raise ValueError(
                "policy comparison applies to the single-workload "
                "configuration; this DnnLife is configured with a lifetime "
                "scenario whose phases carry their own policies — construct "
                "a DnnLife without a scenario to compare policies")
        if policies is None:
            policies = default_policy_suite(self.data_format.word_bits, seed=self.seed)
        comparison = PolicyComparison(workload=self.describe())
        for entry in policies:
            resolved = self._resolve_policy(entry)
            result = self.simulate(resolved)
            comparison.add(resolved.display_name, result)
        return comparison

    def simulate_scenario(self, scenario: Optional["LifetimeScenario"] = None,
                          leveler: Optional["WearLeveler"] = None,
                          engine: str = "packed",
                          scale: Optional["ExperimentScale"] = None,
                          retention_model: Optional["RetentionModel"] = None
                          ) -> "ScenarioResult":
        """Evaluate a multi-phase lifetime scenario on this accelerator.

        ``scenario`` defaults to the one configured at construction time.
        ``engine`` selects the packed closed-form driver (default) or the
        write-by-write ``"explicit"`` cross-check engine.  ``scale`` is the
        :class:`~repro.experiments.common.ExperimentScale` the phase
        workloads are built at — it defaults to the quick scale (per-layer
        weight cap of 1M), so pass ``ExperimentScale.paper()`` to stream the
        phase networks in full.  ``retention_model`` overrides the
        :class:`~repro.scenario.operating_point.RetentionModel` the idle
        phases report data-retention failure probabilities with (each
        phase's DVFS operating point rides in the scenario itself).
        Returns a :class:`~repro.scenario.driver.ScenarioResult`; its
        ``effective`` attribute is an
        :class:`~repro.core.simulation.AgingResult` every existing consumer
        (histograms, wear maps, lifetime estimation) accepts unchanged.
        """
        from repro.scenario.driver import (
            ExplicitScenarioSimulator,
            ScenarioAgingSimulator,
            _factory_seed,
            scenario_stream_factory,
        )

        scenario = scenario if scenario is not None else self.scenario
        if scenario is None:
            raise ValueError("no scenario to simulate; pass one or construct "
                             "DnnLife(..., scenario=...)")
        engines = {"packed": ScenarioAgingSimulator,
                   "explicit": ExplicitScenarioSimulator}
        if engine not in engines:
            raise ValueError(f"unknown scenario engine '{engine}' "
                             f"(expected one of: {', '.join(sorted(engines))})")
        factory = scenario_stream_factory(accelerator=self.accelerator,
                                          scale=scale,
                                          seed=_factory_seed(self.seed))
        simulator = engines[engine](scenario, stream_factory=factory,
                                    seed=self.seed, snm_model=self.snm_model,
                                    leveler=leveler,
                                    retention_model=retention_model)
        return simulator.run()

    def degradation_bins(self, num_bins: int = 8) -> np.ndarray:
        """Histogram bin edges consistent with the configured SNM model."""
        return default_degradation_bins(self.snm_model, num_bins=num_bins)

    # ------------------------------------------------------------------ #
    # Hardware-cost accounting
    # ------------------------------------------------------------------ #
    def mitigation_energy_overhead(self, policy: Union[str, MitigationPolicy, None] = None,
                                   **policy_kwargs) -> Dict[str, float]:
        """Per-inference energy overhead of the mitigation hardware.

        Compares the energy spent in the write/read transducers (and metadata
        storage) against the energy of the weight-memory accesses they guard.
        """
        from repro.hwsynth.wde_designs import wde_for_policy

        resolved = self._resolve_policy(policy, **policy_kwargs)
        scheduler = self.build_scheduler()
        energy_model = self.accelerator.weight_memory_energy_model(self.data_format)
        words_per_inference = scheduler.num_blocks * scheduler.words_per_block
        memory_energy = (energy_model.inference_write_energy(words_per_inference)
                         + energy_model.inference_read_energy(words_per_inference))

        design = wde_for_policy(resolved, self.data_format.word_bits)
        words_per_transfer = max(design.datapath_bits // self.data_format.word_bits, 1)
        transfers = int(np.ceil(words_per_inference / words_per_transfer))
        # Encoder on the write path and decoder on the read path.
        transducer_energy = 2.0 * design.energy_per_transfer_joules() * transfers
        metadata_bits = resolved.metadata_bits_per_word * words_per_inference
        metadata_energy = (energy_model.write_energy + energy_model.read_energy) \
            * metadata_bits / self.data_format.word_bits

        overhead = transducer_energy + metadata_energy
        return {
            "policy": resolved.name,
            "weight_memory_energy_joules": float(memory_energy),
            "transducer_energy_joules": float(transducer_energy),
            "metadata_energy_joules": float(metadata_energy),
            "total_overhead_joules": float(overhead),
            "overhead_percent_of_memory_energy": float(100.0 * overhead / memory_energy),
        }

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #
    def _resolve_policy(self, policy: Union[str, MitigationPolicy, None],
                        **policy_kwargs) -> MitigationPolicy:
        if policy is None:
            return make_policy("dnn_life", self.data_format.word_bits, seed=self.seed,
                               **policy_kwargs)
        if isinstance(policy, str):
            return make_policy(policy, self.data_format.word_bits, seed=self.seed,
                               **policy_kwargs)
        return policy

    def describe(self) -> Dict[str, object]:
        """Machine-readable description of the workload."""
        description = {
            "network": self.network.name,
            "accelerator": getattr(self.accelerator, "config", None).name
            if getattr(self.accelerator, "config", None) else type(self.accelerator).__name__,
            "data_format": self.data_format.name,
            "num_inferences": self.num_inferences,
            "aging_years": self.aging_years,
        }
        if self.scenario is not None:
            description["scenario"] = self.scenario.describe()
        return description
