"""Fused composition of constant-mapping wear-leveling spans.

The packed aging engine accounts a leveled run as a sum over constant-mapping
spans: ``ones[perm_k] += span_ones_k`` for every span ``k`` the leveler's
schedule cuts the run into.  Evaluated literally that is O(spans) full passes
over the ``(rows, word_bits)`` tensor — the 11–48x leveling overhead the
bench trajectory recorded.  This module collapses the whole composition into
a constant number of NumPy passes, bit-identically, by exploiting two pieces
of structure:

* **Channel decomposition** — every deterministic policy kernel's span counts
  are a small linear combination ``span_ones_k = sum_c coeffs[c, k] *
  bases[c]`` of *fixed* basis matrices with cheap per-span scalar
  coefficients (:class:`BatchedCounts`, built by the per-policy
  ``counts_batch`` closed forms).  Composing the whole run then only needs
  the per-*mapping* totals of each channel's coefficients, never a per-span
  tensor.
* **Offset grouping** — schedule-driven levelers (rotation, start-gap) remap
  by per-region row rolls, so spans sharing a roll offset collapse into one
  weighted roll.  The weighted roll-sum itself is evaluated either as a few
  direct slice-adds (small offset support) or as a uniform sliding-window
  via a circular cumulative sum plus a sparse residual (long runs such as
  start-gap's drift), both O(rows * word_bits).

Feedback-driven levelers (wear-swap) contribute explicit permutation chunks
instead; those compose through one fused sparse mat-vec over a ``(row,
span)`` index matrix (SciPy's ``csr_matvecs`` when available, a per-span
gather fallback otherwise), while the per-chunk feedback signal is maintained
as ``(rows,)`` running row totals — never a full-matrix reduction.

Exactness: every basis entry, coefficient, and weight is an exact integer
held in float64 (far below 2**53), so products and partial sums are exact and
*any* regrouping of the summation — by channel, by offset, through a
cumulative-sum window, or via the sparse mat-vec — produces bit-identical
float64 results to the iterative span loop.  The golden-SHA and
packed-vs-explicit batteries in the test suite pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.leveling.remap import SpanTable

__all__ = ["BatchedCounts", "SpanComposer"]

try:  # SciPy is optional: the composer falls back to per-span gathers.
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _CSR_MATVECS = getattr(_scipy_sparsetools, "csr_matvecs", None)
except Exception:  # pragma: no cover - exercised only without SciPy
    _CSR_MATVECS = None

#: Offset supports up to this size are composed as direct slice-roll adds;
#: larger supports go through the cumulative-sum window decomposition.
_DIRECT_ROLLS = 6


@dataclass
class BatchedCounts:
    """A policy kernel's closed form over a batch of spans.

    ``span_ones_k = sum_c coeffs[c, k] * bases[c]`` and ``span_writes_k =
    lengths[k] * writes`` reproduce the scalar ``counts(start, n)`` kernel
    exactly (same integers, hence the same float64 bits).  ``bases`` must be
    identical objects across every ``counts_batch`` call of one kernel — the
    composer folds coefficients across chunks under that identity.
    """

    #: ``C`` fixed basis matrices, each ``(rows, word_bits)`` float64.
    bases: List[np.ndarray]
    #: ``(C, num_spans)`` float64 per-span basis coefficients.
    coeffs: np.ndarray
    #: ``(rows,)`` float64 per-inference write counts.
    writes: np.ndarray
    #: ``C`` cached ``bases[c].sum(axis=1)`` row reductions (feedback signal).
    row_bases: List[np.ndarray]


def _roll_axpy(out3: np.ndarray, base3: np.ndarray, offset: int,
               weight: float) -> None:
    """``out3[g, j] += weight * base3[g, (j - offset) % R]`` via two slices."""
    region_rows = base3.shape[1]
    offset = int(offset) % region_rows
    if offset == 0:
        if weight == 1.0:
            out3 += base3
        else:
            out3 += weight * base3
        return
    out3[:, offset:] += weight * base3[:, :region_rows - offset]
    out3[:, :offset] += weight * base3[:, region_rows - offset:]


def _window_axpy(out3: np.ndarray, base3: np.ndarray, weight: float,
                 first: int, count: int) -> None:
    """Add ``weight * sum_{o in [first, first+count)} roll_o(base3)``.

    The circular sliding-window sum is a cumulative sum over the region axis
    extended by ``count - 1`` wrapped rows; partial sums stay exact integers,
    so the window difference is bitwise equal to summing the rolls directly.
    """
    regions, region_rows, width = base3.shape
    if count <= 0:
        return
    extended = (np.concatenate([base3, base3[:, :count - 1]], axis=1)
                if count > 1 else base3)
    prefix = np.concatenate(
        [np.zeros((regions, 1, width), dtype=np.float64),
         np.cumsum(extended, axis=1, dtype=np.float64)], axis=1)
    window = prefix[:, count:] - prefix[:, :-count]
    _roll_axpy(out3, window, (first + count - 1) % region_rows, weight)


def _circular_run(support: np.ndarray, region_rows: int
                  ) -> Optional[Tuple[int, int]]:
    """``(first, count)`` if ``support`` is one circularly contiguous run."""
    if support.size == region_rows:
        return 0, int(region_rows)
    internal = np.flatnonzero(np.diff(support) > 1)
    wrap_gap = int(support[0]) + region_rows - int(support[-1]) - 1
    if internal.size == 0:
        return int(support[0]), int(support.size)
    if internal.size == 1 and wrap_gap == 0:
        return int(support[int(internal[0]) + 1]), int(support.size)
    return None


def _apply_offset_weights(out: np.ndarray, base: np.ndarray,
                          weights: np.ndarray, region_rows: int) -> None:
    """``out += sum_o weights[o] * region_roll_o(base)`` in O(1) passes.

    ``out``/``base`` are ``(rows, width)`` with regions contiguous along the
    row axis; ``weights`` is the ``(region_rows,)`` exact-integer weight per
    roll offset.  Small supports use direct rolls; contiguous runs split into
    a uniform window (cumulative sum) plus a small residual of rolls; anything
    else falls back to one roll per occupied offset — always exact, the path
    choice only affects speed.
    """
    support = np.flatnonzero(weights)
    if not support.size:
        return
    regions = out.shape[0] // region_rows
    out3 = out.reshape(regions, region_rows, -1)
    base3 = base.reshape(regions, region_rows, -1)
    if support.size > _DIRECT_ROLLS:
        run = _circular_run(support, region_rows)
        if run is not None:
            uniform = float(weights[support].min())
            residual = weights.copy()
            residual[support] -= uniform
            residual_support = np.flatnonzero(residual)
            if residual_support.size <= max(_DIRECT_ROLLS, support.size // 4):
                _window_axpy(out3, base3, uniform, run[0], run[1])
                for offset in residual_support:
                    _roll_axpy(out3, base3, int(offset),
                               float(residual[offset]))
                return
    for offset in support:
        _roll_axpy(out3, base3, int(offset), float(weights[offset]))


def _weighted_perm_matvec(out: np.ndarray, base: np.ndarray,
                          indices: np.ndarray, weights: np.ndarray) -> None:
    """``out[p] += sum_k weights[k] * base[indices[p, k]]`` — one fused pass.

    ``indices`` is the ``(rows, num_spans)`` int32 matrix of inverse
    permutations (span k's logical occupant of each physical row).  With
    SciPy the whole sum is one duplicate-tolerant CSR mat-vec (row-major
    index layout, trivial indptr — no sparse constructor, no sort); without
    it, one gather-accumulate per span.
    """
    rows, num_spans = indices.shape
    width = base.shape[1]
    if _CSR_MATVECS is not None and base.flags.c_contiguous:
        indptr = np.arange(rows + 1, dtype=np.int32) * np.int32(num_spans)
        data = np.ascontiguousarray(
            np.broadcast_to(weights, (rows, num_spans)))
        _CSR_MATVECS(rows, rows, width, indptr, indices.ravel(),
                     data.ravel(), base.ravel(), out.ravel())
        return
    for k in range(num_spans):
        out += weights[k] * base[indices[:, k]]


class SpanComposer:
    """Accumulates leveled span tables and materialises physical counts.

    Drivers feed every :class:`~repro.leveling.remap.SpanTable` chunk with
    its :class:`BatchedCounts` through :meth:`add_table`; :meth:`finalize`
    then produces the composed ``(ones, writes)`` physical counts in a
    constant number of passes.  With ``track_feedback`` the composer also
    maintains ``(rows,)`` running totals of the physical ones/writes after
    each chunk (:meth:`row_totals`) — the wear-map stress signal
    feedback-driven levelers observe between chunks — at per-chunk vector
    cost instead of a full-matrix reduction.
    """

    def __init__(self, rows: int, word_bits: int, region_rows: int,
                 track_feedback: bool = False):
        self.rows = int(rows)
        self.word_bits = int(word_bits)
        self.region_rows = int(region_rows)
        self._bases: Optional[List[np.ndarray]] = None
        self._writes_base: Optional[np.ndarray] = None
        self._row_bases: Optional[List[np.ndarray]] = None
        #: Offset-form contributions: (offsets, coeffs, lengths) per table.
        self._offset_records: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        #: Permutation-form contributions, one entry per span.
        self._perm_inverses: List[np.ndarray] = []
        self._perm_coeffs: List[np.ndarray] = []
        self._perm_lengths: List[float] = []
        self._track = bool(track_feedback)
        self._row_ones = (np.zeros(self.rows, dtype=np.float64)
                          if self._track else None)
        self._row_writes = (np.zeros(self.rows, dtype=np.float64)
                            if self._track else None)
        self._identity32 = None

    def _bind(self, batched: BatchedCounts) -> None:
        if self._bases is None:
            self._bases = batched.bases
            self._writes_base = batched.writes
            self._row_bases = batched.row_bases
        elif batched.bases is not self._bases and any(
                a is not b for a, b in zip(batched.bases, self._bases)):
            raise ValueError("SpanComposer requires a single kernel: basis "
                             "matrices changed between chunks")

    def add_table(self, table: "SpanTable", batched: BatchedCounts) -> None:
        """Fold one span table's contribution into the composition."""
        if not table.num_spans:
            return
        self._bind(batched)
        if table.offsets is not None:
            if self._track:
                raise NotImplementedError(
                    "feedback tracking over offset-form tables is not "
                    "supported: feedback levelers emit permutation chunks")
            self._offset_records.append(
                (table.offsets, batched.coeffs, table.lengths))
            return
        if self._identity32 is None:
            self._identity32 = np.arange(self.rows, dtype=np.int32)
        permutations = table.permutations()
        for k in range(table.num_spans):
            inverse = np.empty(self.rows, dtype=np.int32)
            inverse[permutations[k]] = self._identity32
            self._perm_inverses.append(inverse)
            coeffs = np.asarray(batched.coeffs[:, k], dtype=np.float64)
            length = float(table.lengths[k])
            self._perm_coeffs.append(coeffs)
            self._perm_lengths.append(length)
            if self._track:
                gathered = self._row_bases[0][inverse]
                if coeffs[0] != 1.0:
                    gathered = gathered * coeffs[0]
                for channel in range(1, len(self._row_bases)):
                    if coeffs[channel] != 0.0:
                        gathered += (coeffs[channel]
                                     * self._row_bases[channel][inverse])
                self._row_ones += gathered
                self._row_writes += length * self._writes_base[inverse]

    def row_totals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Running physical ``(row_ones, row_writes)`` totals (feedback)."""
        if not self._track:
            raise RuntimeError("composer built without track_feedback")
        return self._row_ones, self._row_writes

    def finalize(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise the composed physical ``(ones, writes)`` counts."""
        ones = np.zeros((self.rows, self.word_bits), dtype=np.float64)
        writes = np.zeros(self.rows, dtype=np.float64)
        if self._bases is None:  # no spans at all
            return ones, writes
        num_channels = len(self._bases)
        if self._offset_records:
            region_rows = self.region_rows
            gamma = np.zeros((num_channels, region_rows), dtype=np.float64)
            gamma_writes = np.zeros(region_rows, dtype=np.float64)
            for offsets, coeffs, lengths in self._offset_records:
                for channel in range(num_channels):
                    gamma[channel] += np.bincount(
                        offsets, weights=coeffs[channel],
                        minlength=region_rows)
                gamma_writes += np.bincount(
                    offsets, weights=lengths.astype(np.float64),
                    minlength=region_rows)
            for channel in range(num_channels):
                _apply_offset_weights(ones, self._bases[channel],
                                      gamma[channel], region_rows)
            _apply_offset_weights(writes.reshape(-1, 1),
                                  self._writes_base.reshape(-1, 1),
                                  gamma_writes, region_rows)
        if self._perm_inverses:
            indices = np.stack(self._perm_inverses, axis=1)
            coeffs = np.stack(self._perm_coeffs, axis=1)
            for channel in range(num_channels):
                active = np.flatnonzero(coeffs[channel])
                if not active.size:
                    continue
                if active.size == indices.shape[1]:
                    _weighted_perm_matvec(ones, self._bases[channel],
                                          indices, coeffs[channel])
                else:
                    _weighted_perm_matvec(ones, self._bases[channel],
                                          np.ascontiguousarray(
                                              indices[:, active]),
                                          coeffs[channel][active])
            for inverse, length in zip(self._perm_inverses,
                                       self._perm_lengths):
                writes += length * self._writes_base[inverse]
        return ones, writes
