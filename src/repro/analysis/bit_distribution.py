"""Bit-distribution analysis (paper Sec. III-A, Fig. 6).

Computes the probability of observing a '1' at every bit-location of a weight
word, per network and per data representation format, and derives the
observations the paper draws from Fig. 6 (which formats give balanced
distributions, what the average probability is, and how far the distribution
is from the aging-optimal 0.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.nn.network import Network
from repro.quantization.bitops import bit_probabilities
from repro.quantization.formats import PAPER_FORMATS, get_format
from repro.utils.tables import AsciiTable


@dataclass
class BitDistributionResult:
    """Per-bit-location probability of '1' for one (network, format) pair."""

    network: str
    data_format: str
    word_bits: int
    probabilities: np.ndarray  # index = bit-location, LSB first (paper's axis)

    @property
    def average_probability(self) -> float:
        """Mean probability of a '1' across bit-locations (observation 3)."""
        return float(np.mean(self.probabilities))

    @property
    def max_deviation_from_half(self) -> float:
        """Worst-case per-bit deviation from the aging-optimal 0.5."""
        return float(np.max(np.abs(self.probabilities - 0.5)))

    @property
    def is_balanced(self) -> bool:
        """Whether every bit-location is within 0.1 of probability 0.5."""
        return bool(np.all(np.abs(self.probabilities - 0.5) <= 0.1))

    def per_bit(self) -> Dict[int, float]:
        """Dictionary view keyed by bit-location (LSB = 0)."""
        return {index: float(value) for index, value in enumerate(self.probabilities)}


def analyze_network_bit_distribution(network: Network,
                                     data_formats: Optional[Iterable[str]] = None,
                                     max_weights_per_layer: Optional[int] = None,
                                     ) -> Dict[str, BitDistributionResult]:
    """Fig. 6 analysis: bit probabilities of ``network`` under each format.

    Parameters
    ----------
    max_weights_per_layer:
        If given, only the first ``max_weights_per_layer`` weights of each
        layer are analysed (deterministic subsampling used by the quick
        benchmark configurations; ``None`` analyses every weight).
    """
    data_formats = list(data_formats) if data_formats is not None else list(PAPER_FORMATS)
    results: Dict[str, BitDistributionResult] = {}
    for format_name in data_formats:
        data_format = get_format(format_name)
        per_layer_bits = []
        weights_seen = 0
        for layer in network.weight_layers():
            values = np.asarray(layer.weights, dtype=np.float32).reshape(-1)
            if max_weights_per_layer is not None:
                values = values[:max_weights_per_layer]
            words = data_format.to_words(values)
            per_layer_bits.append((words, values.size))
            weights_seen += values.size
        # Aggregate probabilities weighted by layer size.
        aggregate = np.zeros(data_format.word_bits, dtype=np.float64)
        for words, count in per_layer_bits:
            aggregate += bit_probabilities(words, data_format.word_bits) * count
        probabilities = aggregate / max(weights_seen, 1)
        results[format_name] = BitDistributionResult(
            network=network.name,
            data_format=format_name,
            word_bits=data_format.word_bits,
            probabilities=probabilities,
        )
    return results


def bit_distribution_table(results: Dict[str, BitDistributionResult]) -> AsciiTable:
    """Render the Fig. 6 data as a table (bit-location rows, format columns)."""
    formats = list(results)
    max_bits = max(result.word_bits for result in results.values())
    table = AsciiTable(
        ["bit-location"] + formats,
        title=f"P(bit = 1) per bit-location — network '{next(iter(results.values())).network}'",
        precision=3,
    )
    for bit in range(max_bits - 1, -1, -1):
        row = [bit]
        for format_name in formats:
            result = results[format_name]
            row.append(float(result.probabilities[bit]) if bit < result.word_bits else "-")
        table.add_row(row)
    table.add_row(["average"] + [results[name].average_probability for name in formats])
    return table


def format_balance_summary(results: Dict[str, BitDistributionResult]) -> Dict[str, Dict[str, float]]:
    """The paper's three observations, quantified per format."""
    return {
        name: {
            "average_probability": result.average_probability,
            "max_deviation_from_half": result.max_deviation_from_half,
            "balanced": float(result.is_balanced),
        }
        for name, result in results.items()
    }
