"""Full workload reports.

Combines every analysis the framework offers for one workload — bit
distributions, the policy comparison, the spatial wear map, the hardware cost
of the chosen mitigation and its energy overhead — into one plain-text report
(and a machine-readable dictionary).  This is what ``dnn-life report``
produces and what an architect would attach to a design review.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

import numpy as np

from repro.analysis.bit_distribution import analyze_network_bit_distribution, bit_distribution_table
from repro.analysis.duty_cycle import duty_cycle_summary
from repro.analysis.energy import energy_overhead_report
from repro.core.framework import DnnLife
from repro.core.policies import MitigationPolicy
from repro.hwsynth.wde_designs import wde_for_policy
from repro.memory.wear_map import wear_map_from_result
from repro.utils.tables import AsciiTable, format_histogram


class WorkloadReport:
    """Builds the full aging report for one (network, accelerator, format)."""

    def __init__(self, framework: DnnLife,
                 policies: Optional[Iterable[Union[str, MitigationPolicy]]] = None):
        self.framework = framework
        self.policies = list(policies) if policies is not None else None
        self._comparison = None

    @property
    def comparison(self):
        """The policy comparison (computed lazily, reused across sections)."""
        if self._comparison is None:
            self._comparison = self.framework.compare_policies(self.policies)
        return self._comparison

    # ------------------------------------------------------------------ #
    # Sections
    # ------------------------------------------------------------------ #
    def bit_distribution_section(self) -> str:
        """Sec. III-style bit-distribution analysis of the workload's format."""
        results = analyze_network_bit_distribution(
            self.framework.network, [self.framework.data_format.name])
        return bit_distribution_table(results).render()

    def policy_section(self) -> str:
        """Fig. 9-style comparison of the mitigation policies."""
        lines = [self.comparison.table().render()]
        best_label = self.comparison.best_policy()
        best = self.comparison.results[best_label]
        percentages, _, labels = best.histogram()
        lines.append("")
        lines.append(format_histogram(
            labels, percentages,
            title=f"SNM degradation histogram — best policy: {best_label}"))
        return "\n".join(lines)

    def wear_section(self) -> str:
        """Spatial wear analysis of the best and worst policies."""
        best_label = self.comparison.best_policy()
        worst_label = max(self.comparison.results,
                          key=lambda label: float(
                              self.comparison.results[label].snm_degradation().mean()))
        depth = getattr(self.framework.accelerator.config, "weight_fifo_depth_tiles", 1)
        sections = []
        for title, label in (("most aged policy", worst_label), ("best policy", best_label)):
            wear = wear_map_from_result(self.comparison.results[label], num_regions=depth)
            summary = wear.summary()
            sections.append(f"--- {title}: {label} ---")
            sections.append(
                f"worst bit column: {summary['worst_bit_column']} "
                f"({summary['worst_bit_column_mean_percent']:.2f}% mean degradation), "
                f"column imbalance: {summary['column_imbalance_pp']:.2f} pp, "
                f"region imbalance: {summary['region_imbalance_pp']:.2f} pp")
        return "\n".join(sections)

    def hardware_section(self) -> str:
        """Mitigation hardware cost and per-inference energy overhead."""
        energy = energy_overhead_report(self.framework,
                                        ["none", "inversion", "barrel_shifter", "dnn_life"])
        table = AsciiTable(["policy", "WDE area [cells]", "WDE power [nW]",
                            "energy overhead [%]"],
                           title="Mitigation hardware cost", precision=2)
        for name in ("none", "inversion", "barrel_shifter", "dnn_life"):
            policy = self.framework._resolve_policy(name)
            design = wde_for_policy(policy, self.framework.data_format.word_bits)
            table.add_row([name, design.area_cell_units, design.power_nw,
                           energy[name]["overhead_percent_of_memory_energy"]])
        return table.render()

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """The complete plain-text report."""
        workload = self.framework.describe()
        header = (f"DNN-Life workload report — network '{workload['network']}' on "
                  f"'{workload['accelerator']}' ({workload['data_format']}, "
                  f"{workload['num_inferences']} inference epochs, "
                  f"{workload['aging_years']:.0f} years)")
        sections = [
            header,
            "=" * len(header),
            "",
            "1. Weight-bit distribution",
            self.bit_distribution_section(),
            "",
            "2. Aging mitigation policies",
            self.policy_section(),
            "",
            "3. Spatial wear",
            self.wear_section(),
            "",
            "4. Mitigation hardware",
            self.hardware_section(),
        ]
        return "\n".join(sections)

    def summary(self) -> Dict[str, object]:
        """Machine-readable version of the report."""
        best_label = self.comparison.best_policy()
        best = self.comparison.results[best_label]
        return {
            "workload": self.framework.describe(),
            "bit_distribution": {
                self.framework.data_format.name:
                    self.framework.bit_distribution().tolist(),
            },
            "policies": {label: result.summary()
                         for label, result in self.comparison.results.items()},
            "best_policy": best_label,
            "best_policy_duty_cycle": duty_cycle_summary(best.duty_cycles),
            "energy_overhead": energy_overhead_report(
                self.framework, ["none", "inversion", "barrel_shifter", "dnn_life"]),
        }


def generate_report(framework: DnnLife,
                    policies: Optional[Iterable[Union[str, MitigationPolicy]]] = None) -> str:
    """Convenience wrapper used by the CLI: build and render a report."""
    return WorkloadReport(framework, policies).render()
