"""Energy-overhead analysis of the aging-mitigation hardware.

The paper's headline claim is that DNN-Life balances the weight-memory
duty-cycle "at minimal energy overhead".  These helpers quantify that for any
workload: they compare the per-inference energy of the write/read transducers
(and metadata accesses) of each policy against the energy of the weight-memory
traffic itself, using the hardware cost models of :mod:`repro.hwsynth` and the
memory access-energy model of :mod:`repro.memory.energy`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.core.framework import DnnLife
from repro.core.policies import MitigationPolicy
from repro.utils.tables import AsciiTable


def energy_overhead_report(framework: DnnLife,
                           policies: Optional[Iterable[Union[str, MitigationPolicy]]] = None
                           ) -> Dict[str, Dict[str, float]]:
    """Per-policy energy overhead for one workload."""
    policies = list(policies) if policies is not None else [
        "none", "inversion", "barrel_shifter", "dnn_life"]
    report: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        overhead = framework.mitigation_energy_overhead(policy)
        label = overhead["policy"] if isinstance(policy, str) else policy.display_name
        report[label] = overhead
    return report


def energy_overhead_table(framework: DnnLife,
                          policies: Optional[Iterable[Union[str, MitigationPolicy]]] = None
                          ) -> AsciiTable:
    """ASCII rendering of :func:`energy_overhead_report`."""
    report = energy_overhead_report(framework, policies)
    table = AsciiTable(
        ["policy", "memory energy [uJ]", "transducer energy [uJ]",
         "metadata energy [uJ]", "overhead [%]"],
        title=f"Per-inference mitigation energy overhead — {framework.describe()}",
        precision=4,
    )
    for label, entry in report.items():
        table.add_row([
            label,
            entry["weight_memory_energy_joules"] * 1e6,
            entry["transducer_energy_joules"] * 1e6,
            entry["metadata_energy_joules"] * 1e6,
            entry["overhead_percent_of_memory_energy"],
        ])
    return table
