"""Analysis and reporting helpers.

Turns raw simulation outputs into the statistics and renderings the paper
reports: per-bit-location probabilities (Fig. 6), duty-cycle statistics,
SNM-degradation histograms (Figs. 9 and 11) and energy-overhead accounting.
"""

from repro.analysis.bit_distribution import (
    BitDistributionResult,
    analyze_network_bit_distribution,
    bit_distribution_table,
)
from repro.analysis.duty_cycle import (
    duty_cycle_histogram,
    duty_cycle_summary,
    policy_improvement_summary,
)
from repro.analysis.energy import energy_overhead_report, energy_overhead_table
from repro.analysis.report import WorkloadReport, generate_report

__all__ = [
    "WorkloadReport",
    "generate_report",
    "BitDistributionResult",
    "analyze_network_bit_distribution",
    "bit_distribution_table",
    "duty_cycle_histogram",
    "duty_cycle_summary",
    "policy_improvement_summary",
    "energy_overhead_report",
    "energy_overhead_table",
]
