"""Duty-cycle statistics helpers."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.simulation import AgingResult


def duty_cycle_histogram(duty_cycles: np.ndarray, num_bins: int = 20
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of per-cell duty-cycles as percentages of the population."""
    duty = np.asarray(duty_cycles, dtype=np.float64).reshape(-1)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    counts, _ = np.histogram(duty, bins=edges)
    if duty.size == 0:
        return np.zeros(num_bins), edges
    return counts / duty.size * 100.0, edges


def duty_cycle_summary(duty_cycles: np.ndarray) -> Dict[str, float]:
    """Deviation-from-optimum statistics of a duty-cycle population."""
    duty = np.asarray(duty_cycles, dtype=np.float64).reshape(-1)
    deviation = np.abs(duty - 0.5)
    return {
        "mean_duty": float(duty.mean()),
        "std_duty": float(duty.std()),
        "mean_abs_deviation": float(deviation.mean()),
        "p95_abs_deviation": float(np.percentile(deviation, 95)),
        "max_abs_deviation": float(deviation.max()),
        "percent_within_5pp_of_half": float((deviation <= 0.05).mean() * 100.0),
        "percent_at_extremes": float(((duty <= 0.01) | (duty >= 0.99)).mean() * 100.0),
    }


def policy_improvement_summary(baseline: AgingResult, mitigated: AgingResult
                               ) -> Dict[str, float]:
    """Headline improvement metrics of one policy over a baseline result."""
    baseline_degradation = baseline.snm_degradation()
    mitigated_degradation = mitigated.snm_degradation()
    return {
        "baseline_policy": baseline.policy_name,
        "mitigated_policy": mitigated.policy_name,
        "mean_degradation_reduction_pp": float(baseline_degradation.mean()
                                               - mitigated_degradation.mean()),
        "max_degradation_reduction_pp": float(baseline_degradation.max()
                                              - mitigated_degradation.max()),
        "baseline_mean_degradation": float(baseline_degradation.mean()),
        "mitigated_mean_degradation": float(mitigated_degradation.mean()),
        "baseline_max_degradation": float(baseline_degradation.max()),
        "mitigated_max_degradation": float(mitigated_degradation.max()),
    }


def tail_fraction(duty_cycles: np.ndarray, b_over_k: float) -> float:
    """Fraction of cells with duty <= b/K or >= 1 - b/K (empirical Eq. 1)."""
    duty = np.asarray(duty_cycles, dtype=np.float64).reshape(-1)
    return float(((duty <= b_over_k) | (duty >= 1.0 - b_over_k)).mean())


def compare_duty_distributions(results: Dict[str, AgingResult],
                               thresholds: Optional[Sequence[float]] = None
                               ) -> Dict[str, Dict[str, float]]:
    """Tail fractions at several b/K thresholds for a set of policy results."""
    thresholds = list(thresholds) if thresholds is not None else [0.1, 0.2, 0.3, 0.4]
    comparison: Dict[str, Dict[str, float]] = {}
    for label, result in results.items():
        duty = result.duty_cycles
        comparison[label] = {f"tail@{threshold:.1f}": tail_fraction(duty, threshold)
                             for threshold in thresholds}
    return comparison
