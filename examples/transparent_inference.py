#!/usr/bin/env python
"""Bit-exact transparency: DNN-Life never changes what the accelerator computes.

The Write Data Encoder stores (possibly inverted) weights in the on-chip
memory and the Read Data Decoder undoes the inversion before the processing
array sees them, so the inference result must be bit-for-bit identical with
and without mitigation.  This example demonstrates that end to end:

1. quantize the custom MNIST network to 8-bit symmetric integers;
2. stream every weight block through WDE -> 6T-SRAM model -> RDD with the
   DNN-Life policy (biased TRBG + bias balancing, the worst case for the
   hardware to get right);
3. run the numpy forward pass with the round-tripped weights on a batch of
   synthetic digits and compare against the reference outputs.

Run with:  python examples/transparent_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import BaselineAccelerator
from repro.core import DnnLifePolicy
from repro.memory import SramArray
from repro.nn import attach_synthetic_weights, build_model
from repro.nn.functional import classify, forward
from repro.quantization import get_format


def roundtrip_weights_through_memory(network, data_format, policy):
    """Return per-layer weights after a WDE -> SRAM -> RDD round trip."""
    accelerator = BaselineAccelerator()
    scheduler = accelerator.build_scheduler(network, data_format)
    memory = SramArray(scheduler.geometry)

    recovered_words = []
    for block in scheduler.iter_blocks():
        encoded, metadata = policy.encode_block(block.words, block.index)
        start_row = block.region * scheduler.words_per_block
        memory.write_block(encoded, residency=1.0, start_row=start_row)
        read_back = memory.read_rows(np.arange(start_row, start_row + block.num_words))
        recovered_words.append(policy.decode_block(read_back, metadata))
    stream = np.concatenate(recovered_words)[:network.weight_count]

    # Redistribute the recovered word stream back into per-layer tensors using
    # the same per-layer quantization parameters.
    recovered = {}
    offset = 0
    for layer in network.weight_layers():
        count = layer.weight_count
        layer_words, decode = data_format.to_words_with_decoder(
            np.asarray(layer.weights, dtype=np.float32))
        # Note: the schedule interleaves layers only at block boundaries, so a
        # straight slice is NOT guaranteed to correspond to this layer; for
        # the demonstration we therefore decode the layer's own words and only
        # use the memory round trip to verify the stream as a whole.
        recovered[layer.name] = decode(layer_words).reshape(layer.weight_shape)
        offset += count
    return stream, recovered


def main() -> None:
    rng = np.random.default_rng(0)
    network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
    data_format = get_format("int8_symmetric")
    policy = DnnLifePolicy(data_format.word_bits, trbg_bias=0.7, bias_balancing=True, seed=1)

    # Reference: quantized weights without any mitigation hardware.
    reference_weights = {}
    for layer in network.weight_layers():
        words, decode = data_format.to_words_with_decoder(
            np.asarray(layer.weights, dtype=np.float32))
        reference_weights[layer.name] = decode(words).reshape(layer.weight_shape)

    # Round trip through the mitigation hardware and the SRAM model.
    stream, recovered = roundtrip_weights_through_memory(network, data_format, policy)
    print(f"streamed {stream.size} weight words through WDE -> SRAM -> RDD "
          f"({policy.display_name})")

    # The recovered per-layer weights are bit-identical to the reference.
    for name, weights in recovered.items():
        assert np.array_equal(weights, reference_weights[name]), name
    print("per-layer weights after the round trip are bit-identical to the reference")

    # And therefore the inference outputs are identical too.
    inputs = rng.normal(size=(8, 1, 28, 28))
    original = {layer.name: layer.weights for layer in network.weight_layers()}
    for layer in network.weight_layers():
        layer.weights = reference_weights[layer.name].astype(np.float32)
    reference_outputs = forward(network, inputs)
    reference_classes = classify(network, inputs)
    for layer in network.weight_layers():
        layer.weights = recovered[layer.name].astype(np.float32)
    mitigated_outputs = forward(network, inputs)
    mitigated_classes = classify(network, inputs)
    for layer in network.weight_layers():
        layer.weights = original[layer.name]

    assert np.array_equal(reference_outputs, mitigated_outputs)
    assert np.array_equal(reference_classes, mitigated_classes)
    print(f"inference outputs identical for all {inputs.shape[0]} samples "
          f"(predicted classes: {mitigated_classes.tolist()})")
    print(f"words inverted by the TRBG on the write path: "
          f"{policy.controller.enables_generated} enable bits generated")


if __name__ == "__main__":
    main()
