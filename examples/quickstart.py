#!/usr/bin/env python
"""Quickstart: analyse and mitigate weight-memory aging for one DNN.

This example walks through the complete DNN-Life flow on the paper's custom
MNIST network running on the baseline accelerator:

1. build the network and attach trained-like weights;
2. analyse the bit-level distribution of its weights (the Sec. III analysis);
3. simulate seven years of NBTI aging of the on-chip weight memory under the
   paper's six mitigation configurations (the Fig. 9 comparison);
4. report the SNM-degradation histograms and the energy overhead of the
   proposed mitigation hardware.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DnnLife
from repro.nn import attach_synthetic_weights, build_model
from repro.utils.tables import format_histogram


def main() -> None:
    # 1. Build the paper's custom MNIST CNN and attach trained-like weights.
    network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
    print(network.summary())

    # 2. Design-time analysis: probability of a '1' at every bit-location of
    #    an 8-bit symmetric-quantized weight (paper Fig. 6 for this network).
    framework = DnnLife(network, data_format="int8_symmetric",
                        num_inferences=100, seed=0)
    probabilities = framework.bit_distribution()
    print("\nP(bit = 1) per bit-location (LSB first):",
          np.array2string(probabilities, precision=3))
    print(f"average probability of a '1': {framework.average_bit_probability():.3f}")

    # 3. Run-time simulation: compare the paper's six mitigation configurations.
    comparison = framework.compare_policies()
    print("\n" + comparison.table().render())
    print(f"\nbest policy: {comparison.best_policy()}")

    # 4a. Fig. 9-style histogram of the winning DNN-Life configuration.
    best = comparison.results[comparison.best_policy()]
    percentages, _, labels = best.histogram()
    print("\n" + format_histogram(labels, percentages,
                                  title="SNM degradation after 7 years (DNN-Life)"))

    # 4b. Energy overhead of the mitigation hardware for one inference.
    overhead = framework.mitigation_energy_overhead("dnn_life")
    print(f"\nmitigation energy overhead: "
          f"{overhead['overhead_percent_of_memory_energy']:.2f}% of the "
          f"weight-memory access energy per inference")


if __name__ == "__main__":
    main()
