#!/usr/bin/env python
"""Spatial wear analysis, full workload report and a multi-tenant scenario.

Beyond the paper's aggregate histograms, an SRAM designer wants to know *where*
the stressed cells are (which bit columns, which FIFO tiles) and whether the
conclusions survive realistic deployment scenarios such as one accelerator
serving several different DNNs over its lifetime.  This example shows:

1. the spatial wear map of the TPU-like NPU's weight FIFO under the custom
   MNIST network, with and without DNN-Life — the unbalanced bit columns and
   tiles are clearly visible without mitigation and vanish with it;
2. the one-page workload report produced by ``repro.analysis.report`` (also
   available as ``dnn-life report``);
3. a multi-tenant lifetime: the accelerator alternates between LeNet-5 and the
   custom MNIST network; DNN-Life keeps every cell balanced regardless.

Run with:  python examples/wear_report_and_multi_tenant.py
"""

from __future__ import annotations

from repro.accelerator import TpuLikeNpu
from repro.analysis.report import WorkloadReport
from repro.core import DnnLifePolicy, NoMitigationPolicy
from repro.core.framework import DnnLife
from repro.core.simulation import AgingSimulator
from repro.memory import wear_map_from_result
from repro.nn import attach_synthetic_weights, build_model
from repro.nn.network import concatenate_networks


def spatial_wear_section() -> None:
    print("=" * 72)
    print("1. Spatial wear of the TPU weight FIFO (custom MNIST network)")
    print("=" * 72)
    npu = TpuLikeNpu()
    network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
    scheduler = npu.build_scheduler(network, "int8_symmetric")
    for policy in (NoMitigationPolicy(), DnnLifePolicy(8, trbg_bias=0.7, seed=0)):
        result = AgingSimulator(scheduler, policy, num_inferences=50, seed=0).run()
        wear = wear_map_from_result(result, num_regions=npu.fifo_depth_tiles)
        summary = wear.summary()
        print(f"\npolicy: {policy.display_name}")
        print(f"  mean degradation {summary['mean_degradation_percent']:.2f}%, "
              f"worst bit column {summary['worst_bit_column']} "
              f"({summary['worst_bit_column_mean_percent']:.2f}%), "
              f"region imbalance {summary['region_imbalance_pp']:.2f} pp")
        print(wear.render(max_rows=8))


def workload_report_section() -> None:
    print("\n" + "=" * 72)
    print("2. One-page workload report (dnn-life report)")
    print("=" * 72)
    network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
    framework = DnnLife(network, data_format="int8_asymmetric", num_inferences=30, seed=0)
    report = WorkloadReport(framework, policies=["none", "inversion", "dnn_life"])
    print(report.render())


def multi_tenant_section() -> None:
    print("\n" + "=" * 72)
    print("3. Multi-tenant lifetime: LeNet-5 + custom MNIST on one accelerator")
    print("=" * 72)
    lenet = attach_synthetic_weights(build_model("lenet5"), seed=1)
    mnist = attach_synthetic_weights(build_model("custom_mnist"), seed=2)
    combined = concatenate_networks("lenet5+custom_mnist", [lenet, mnist])
    framework = DnnLife(combined, data_format="int8_symmetric", num_inferences=50, seed=0)
    comparison = framework.compare_policies(["none", "inversion", "dnn_life"])
    print(comparison.table().render())
    print(f"\nbest policy for the multi-tenant workload: {comparison.best_policy()}")


def main() -> None:
    spatial_wear_section()
    workload_report_section()
    multi_tenant_section()


if __name__ == "__main__":
    main()
