#!/usr/bin/env python
"""Hardware cost of aging mitigation: Table II, energy overhead and lifetime.

DNN-Life's argument is two-sided: (1) it balances the weight-memory duty-cycle
better than the classic schemes, and (2) it does so at a hardware cost close
to that of a plain inversion encoder — far below a barrel shifter.  This
example regenerates the Table II comparison from the structural cost models,
translates the circuit costs into a per-inference energy overhead for AlexNet
on the baseline accelerator, and reports the resulting lifetime extension of
the weight memory at a fixed SNM-degradation budget.

Run with:  python examples/mitigation_hardware_costs.py
"""

from __future__ import annotations

from repro.analysis.energy import energy_overhead_table
from repro.core.framework import DnnLife
from repro.experiments.ablations import run_lifetime_improvement
from repro.experiments.table2 import render_table2, table2_relative_costs
from repro.hwsynth import proposed_dnn_life_wde
from repro.nn import attach_synthetic_weights, build_model
from repro.utils.tables import AsciiTable


def main() -> None:
    # Table II: the three 64-bit Write Data Encoder designs.
    print(render_table2())

    relative = table2_relative_costs()
    print("\nRelative to the inversion WDE (measured vs. paper):")
    table = AsciiTable(["design", "area x (measured)", "area x (paper)",
                        "power x (measured)", "power x (paper)"], precision=2)
    for design, entry in relative.items():
        table.add_row([design, entry["area_vs_inversion"], entry["paper_area_vs_inversion"],
                       entry["power_vs_inversion"], entry["paper_power_vs_inversion"]])
    print(table.render())

    # What the proposed WDE is made of.
    design = proposed_dnn_life_wde()
    print(f"\nProposed WDE structural summary: {design.netlist.total_cells} cells, "
          f"{design.area_cell_units:.0f} cell-area units, "
          f"{design.energy_per_transfer_joules() * 1e15:.1f} fJ per 64-bit transfer")

    # System-level energy overhead for AlexNet on the baseline accelerator.
    network = attach_synthetic_weights(build_model("alexnet"), seed=0)
    framework = DnnLife(network, data_format="int8_symmetric", num_inferences=10, seed=0)
    print("\n" + energy_overhead_table(framework).render())

    # Lifetime extension at a 15% SNM-degradation budget (reduced-scale run).
    lifetime = run_lifetime_improvement(network_name="alexnet", data_format="float32",
                                        quick=True)
    print(f"\nWeight-memory lifetime at a 15% SNM budget: "
          f"{lifetime['baseline_lifetime_years']:.1f} years without mitigation vs. "
          f"{lifetime['dnn_life_lifetime_years']:.1f} years with DNN-Life "
          f"({lifetime['lifetime_improvement_factor']:.1f}x).")


if __name__ == "__main__":
    main()
