#!/usr/bin/env python
"""AlexNet on the baseline accelerator: data formats vs. aging (Fig. 9 study).

The paper's main experiment streams AlexNet's weights through the 512 KB
weight buffer of the baseline accelerator and measures how the choice of data
representation (float32, int8 symmetric, int8 asymmetric) and the mitigation
policy affect the 7-year SNM degradation of the 6T-SRAM cells.

This example reproduces that study at a reduced scale (a capped number of
weights per layer and 20 inference epochs) so it finishes in well under a
minute; pass ``--full`` to run the paper-scale configuration.

Run with:  python examples/alexnet_weight_memory_aging.py [--full]
"""

from __future__ import annotations

import argparse

from repro.experiments.fig9 import fig9_headline_claims, run_fig9_baseline_alexnet
from repro.utils.tables import AsciiTable, format_histogram


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the full-scale (paper) configuration — slow")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    results = run_fig9_baseline_alexnet(quick=not args.full, seed=args.seed)

    # Summary table across formats and policies.
    table = AsciiTable(["data format", "policy", "mean SNM deg. [%]", "max SNM deg. [%]"],
                       title="AlexNet on the baseline accelerator — aging by format and policy")
    for format_name, per_policy in results.items():
        for label, entry in per_policy.items():
            table.add_row([format_name, label,
                           entry["summary"]["mean_snm_degradation_percent"],
                           entry["summary"]["max_snm_degradation_percent"]])
    print(table.render())

    # Histograms for the float32 format (the paper's most striking panel:
    # inversion leaves the biased exponent-bit cells at maximal degradation).
    print("\nfloat32 histograms (percentage of cells per SNM-degradation bin):")
    for label, entry in results["float32"].items():
        print("\n" + format_histogram(entry["histogram_bin_labels"],
                                      entry["histogram_percent"], title=f"-- {label}"))

    claims = fig9_headline_claims(results)
    print("\nHeadline claims per data format:")
    for format_name, claim in claims.items():
        print(f"  {format_name}: best policy = {claim['best_policy']}, "
              f"bias balancing helps = {claim['bias_balancing_helps']}")


if __name__ == "__main__":
    main()
