#!/usr/bin/env python
"""TPU-like NPU with a circular weight FIFO: when does inversion fail? (Fig. 11)

The paper validates DNN-Life on a second accelerator: a TPU-like NPU whose
weight storage is a 256 KB FIFO, four tiles deep.  For large networks
(AlexNet, VGG-16) many different tiles rotate through every FIFO slot, so even
the classic periodic-inversion scheme looks acceptable.  The small custom
MNIST network, however, occupies the FIFO without ever rotating — the same
bits sit in the same cells for the device's whole lifetime and inversion
aliases completely, while DNN-Life still balances every cell.

Run with:  python examples/tpu_npu_multi_network.py [--full]
"""

from __future__ import annotations

import argparse

from repro.experiments.fig11 import fig11_headline_claims, run_fig11_tpu_networks
from repro.utils.tables import AsciiTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the full-scale (paper) configuration — slow")
    parser.add_argument("--networks", nargs="*", default=None,
                        help="subset of networks to evaluate (default: paper's three)")
    args = parser.parse_args()

    results = run_fig11_tpu_networks(networks=args.networks, quick=not args.full)
    claims = fig11_headline_claims(results)

    table = AsciiTable(["network", "policy", "mean SNM deg. [%]", "% cells near worst"],
                       title="TPU-like NPU — 8-bit symmetric weights, four-tile weight FIFO")
    for network_name, per_policy in results.items():
        for label, entry in per_policy.items():
            table.add_row([network_name, label,
                           entry["summary"]["mean_snm_degradation_percent"],
                           entry["summary"]["percent_cells_near_worst"]])
    print(table.render())

    print("\nObservations (paper Fig. 11):")
    for network_name, claim in claims.items():
        print(f"  {network_name}: inversion mean = {claim['inversion_mean']:.2f}%, "
              f"DNN-Life mean = {claim['dnn_life_mean']:.2f}%, "
              f"DNN-Life best = {claim['dnn_life_is_best']}")
    custom = claims.get("custom_mnist")
    if custom is not None and custom["inversion_mean"] > 20.0:
        print("\n  -> the classic inversion scheme collapses on the small custom network "
              "(its weights never rotate through the FIFO), exactly as the paper reports.")


if __name__ == "__main__":
    main()
