"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` also works on environments whose tooling lacks
the ``wheel`` package required for PEP-517 editable installs (legacy
``setup.py develop`` path).
"""

from setuptools import setup

setup()
