"""Tests for the dnn-life command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("fig1", "fig2", "fig6", "fig7", "fig9", "fig11",
                        "table1", "table2", "compare", "energy"):
            args = parser.parse_args([command] if command not in ("compare", "energy")
                                     else [command, "--network", "custom_mnist"])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_full_flag(self):
        args = build_parser().parse_args(["fig9", "--full"])
        assert args.quick is False


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "512" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Barrel" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "SNM degradation" in capsys.readouterr().out

    def test_fig7_with_json(self, tmp_path, capsys):
        output = tmp_path / "fig7.json"
        assert main(["--json", str(output), "fig7"]) == 0
        payload = json.loads(output.read_text())
        assert payload["P(duty<=0.3 or >=0.7) @ K=20"] > 0.1
        assert "JSON result written" in capsys.readouterr().out

    def test_compare_small_workload(self, capsys, tmp_path):
        output = tmp_path / "compare.json"
        assert main(["--json", str(output), "compare", "--network", "custom_mnist",
                     "--format", "int8_symmetric", "--inferences", "5"]) == 0
        text = capsys.readouterr().out
        assert "DNN-Life" in text
        payload = json.loads(output.read_text())
        assert "best_policy" in payload

    def test_energy_command(self, capsys):
        assert main(["energy", "--network", "custom_mnist", "--inferences", "2"]) == 0
        assert "overhead" in capsys.readouterr().out
