"""Tests for the dnn-life command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("fig1", "fig2", "fig6", "fig7", "fig9", "fig11",
                        "table1", "table2", "compare", "energy"):
            args = parser.parse_args([command] if command not in ("compare", "energy")
                                     else [command, "--network", "custom_mnist"])
            assert args.command == command

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_full_flag(self):
        args = build_parser().parse_args(["fig9", "--full"])
        assert args.quick is False


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "512" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Barrel" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "SNM degradation" in capsys.readouterr().out

    def test_fig7_with_json(self, tmp_path, capsys):
        output = tmp_path / "fig7.json"
        assert main(["--json", str(output), "fig7"]) == 0
        payload = json.loads(output.read_text())
        assert payload["P(duty<=0.3 or >=0.7) @ K=20"] > 0.1
        assert "JSON result written" in capsys.readouterr().out

    def test_compare_small_workload(self, capsys, tmp_path):
        output = tmp_path / "compare.json"
        assert main(["--json", str(output), "compare", "--network", "custom_mnist",
                     "--format", "int8_symmetric", "--inferences", "5"]) == 0
        text = capsys.readouterr().out
        assert "DNN-Life" in text
        payload = json.loads(output.read_text())
        assert "best_policy" in payload

    def test_energy_command(self, capsys):
        assert main(["energy", "--network", "custom_mnist", "--inferences", "2"]) == 0
        assert "overhead" in capsys.readouterr().out


class TestScenarioCommand:
    SMALL_SPEC = ("custom_mnist:int8:inversion:3@85C,idle:2@45C,"
                  "custom_mnist:int8:none:3@45C")

    def test_scenario_verb(self, capsys):
        assert main(["scenario", "--spec", self.SMALL_SPEC,
                     "--memory-kb", "4", "--fifo-depth-tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "effective stress histogram" in out
        assert "memory lifetime" in out

    def test_scenario_json_output(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        assert main(["--json", str(path), "scenario", "--spec", self.SMALL_SPEC,
                     "--memory-kb", "4", "--fifo-depth-tiles", "4"]) == 0
        payload = json.loads(path.read_text())
        assert payload["workload"]["spec"] == self.SMALL_SPEC
        assert len(payload["phases"]) == 3

    def test_scenario_sweep(self, capsys):
        assert main(["sweep", "scenario",
                     "--grid", "spec=custom_mnist:int8:none:3,"
                               "custom_mnist:int8:inversion:3",
                     "--grid", "weight_memory_kb=4",
                     "--workers", "1"]) == 0
        assert "2 jobs" in capsys.readouterr().out


class TestFleetCommand:
    SMALL_MIX = ("0.5*custom_mnist:int8:inversion:3@85C,idle:2@45C@0.7V:0.2GHz|"
                 "0.5*lenet5:int8:none:3@45C")

    def test_fleet_verb(self, capsys):
        assert main(["fleet", "--devices", "8", "--mix", self.SMALL_MIX,
                     "--memory-kb", "4", "--fifo-depth-tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "=== fleet" in out
        assert "population survival" in out
        assert "cohorts" in out

    def test_fleet_json_output(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        assert main(["--json", str(path), "fleet", "--devices", "6",
                     "--mix", self.SMALL_MIX, "--memory-kb", "4",
                     "--fifo-depth-tiles", "4"]) == 0
        payload = json.loads(path.read_text())
        assert payload["workload"]["devices"] == 6
        assert sum(payload["modes"].values()) == 6
        assert (len(payload["survival"]["times_years"])
                == len(payload["survival"]["fraction"]))
        assert payload["population"]["mix_spec"]
        assert sum(entry["num_devices"] for entry in payload["cohorts"]) == 6

    def test_fleet_sweep(self, capsys):
        assert main(["sweep", "fleet",
                     "--grid", "mix=;custom_mnist:int8:none:3@85C",
                     "--grid", "devices=4,6",
                     "--grid", "weight_memory_kb=4",
                     "--workers", "1"]) == 0
        assert "2 jobs" in capsys.readouterr().out


class TestWorkloadCommand:
    SMALL = ["--histories", "3", "--devices", "4", "--horizon-days", "2",
             "--memory-kb", "4", "--fifo-depth-tiles", "4"]

    def test_workload_fleet_verb(self, capsys):
        assert main(["workload"] + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "sampled timeline" in out
        assert "sampled histories" in out
        assert "population survival" in out

    def test_workload_scenario_mode(self, capsys):
        assert main(["workload", "--mode", "scenario"] + self.SMALL) == 0
        out = capsys.readouterr().out
        assert "sampled timeline" in out
        assert "memory lifetime" in out

    def test_workload_json_output(self, tmp_path, capsys):
        path = tmp_path / "workload.json"
        assert main(["--json", str(path), "workload"] + self.SMALL) == 0
        payload = json.loads(path.read_text())
        assert payload["workload"]["histories"] == 3
        assert payload["compiled"]["mix_spec"]
        assert len(payload["timeline"]["slots"]) == 4
        assert payload["result"]["workload"]["devices"] == 4

    def test_workload_sweep(self, capsys):
        assert main(["sweep", "workload", "--grid", "rate_per_day=8,16",
                     "--grid", "histories=2", "--grid", "horizon_days=2",
                     "--grid", "weight_memory_kb=4",
                     "--grid", "fifo_depth_tiles=4",
                     "--workers", "1"]) == 0
        assert "2 jobs" in capsys.readouterr().out


class TestFriendlyValidation:
    """Invalid durations / phase tokens exit 2 with one-line errors."""

    def _error_line(self, capsys):
        err = capsys.readouterr().err.strip()
        assert err.startswith("dnn-life: error:")
        assert "Traceback" not in err
        assert "\n" not in err
        return err

    def test_run_rejects_non_positive_inferences(self, capsys):
        assert main(["run", "aging", "--set", "num_inferences=-5"]) == 2
        assert "must be > 0" in self._error_line(capsys)

    def test_subcommand_rejects_non_positive_inferences(self, capsys):
        assert main(["aging", "--inferences", "0"]) == 2
        assert "must be > 0" in self._error_line(capsys)

    def test_sweep_rejects_non_positive_inferences(self, capsys):
        assert main(["sweep", "aging", "--grid", "num_inferences=0"]) == 2
        assert "must be > 0" in self._error_line(capsys)

    def test_scenario_rejects_unknown_phase_token(self, capsys):
        assert main(["scenario", "--spec", "bogus:int8:none:5"]) == 2
        assert "unknown network 'bogus'" in self._error_line(capsys)

    def test_scenario_rejects_non_positive_phase_duration(self, capsys):
        assert main(["scenario", "--spec", "lenet5:int8:none:0"]) == 2
        assert "duration must be > 0" in self._error_line(capsys)

    def test_scenario_sweep_rejects_bad_spec(self, capsys):
        assert main(["sweep", "scenario",
                     "--grid", "spec=lenet5:int8:bogus:5"]) == 2
        assert "unknown policy 'bogus'" in self._error_line(capsys)

    def test_leveling_subcommand_rejects_non_positive_period(self, capsys):
        assert main(["level", "--leveling-period", "0"]) == 2
        assert "must be > 0" in self._error_line(capsys)

    def test_scenario_rejects_impossible_reference_temperature(self, capsys):
        assert main(["scenario", "--reference-temp", "-300"]) == 2
        assert "absolute zero" in self._error_line(capsys)

    def test_scenario_rejects_out_of_range_swap_fraction(self, capsys):
        assert main(["scenario", "--swap-fraction", "0.7"]) == 2
        assert "(0, 0.5]" in self._error_line(capsys)

    def test_scenario_rejects_negative_rotation_step(self, capsys):
        assert main(["scenario", "--rotation-step", "-1"]) == 2
        assert ">= 0" in self._error_line(capsys)

    def test_level_rejects_out_of_range_swap_fraction(self, capsys):
        assert main(["level", "--swap-fraction", "0.9"]) == 2
        assert "(0, 0.5]" in self._error_line(capsys)

    def test_fleet_rejects_non_positive_devices(self, capsys):
        assert main(["fleet", "--devices", "0"]) == 2
        assert "must be > 0" in self._error_line(capsys)

    def test_fleet_rejects_mix_weights_not_summing_to_one(self, capsys):
        assert main(["fleet", "--mix", "0.8*custom_mnist:int8:none:3|"
                                       "0.6*lenet5:int8:none:3"]) == 2
        err = self._error_line(capsys)
        assert "mix" in err
        assert "sum to 1" in err

    def test_fleet_rejects_bad_corner(self, capsys):
        assert main(["fleet", "--corners", "0.9V"]) == 2
        assert "corners" in self._error_line(capsys)

    def test_fleet_sweep_rejects_unknown_network_in_mix(self, capsys):
        assert main(["sweep", "fleet",
                     "--grid", "mix=bogus:int8:none:3"]) == 2
        assert "mix" in self._error_line(capsys)

    def test_workload_rejects_unknown_network_in_models(self, capsys):
        assert main(["workload", "--models", "bogus:int8:none"]) == 2
        assert "unknown network 'bogus'" in self._error_line(capsys)

    def test_workload_rejects_out_of_range_amplitude(self, capsys):
        assert main(["workload", "--diurnal-amplitude", "1.5"]) == 2
        assert "[0, 1)" in self._error_line(capsys)

    def test_workload_rejects_bad_corner(self, capsys):
        assert main(["workload", "--night-corner", "fast"]) == 2
        assert "operating point" in self._error_line(capsys)

    def test_workload_rejects_mixed_word_widths(self, capsys):
        assert main(["workload", "--models",
                     "lenet5:int8:none|lenet5:float32:none"]) == 2
        assert "word width" in self._error_line(capsys)


class TestStreamStoreCli:
    """The ``--stream-store`` controls and the ``cache --streams`` view."""

    @pytest.fixture(autouse=True)
    def _fresh_stream_cache(self):
        # the process-local LRU would otherwise serve streams built by
        # earlier tests, hiding all store traffic
        from repro.experiments.aging_runner import clear_stream_cache

        clear_stream_cache()
        yield
        clear_stream_cache()

    SWEEP = ["sweep", "aging", "--grid", "network=custom_mnist",
             "--grid", "weight_memory_kb=8", "--grid", "num_inferences=2",
             "--grid", "policy=none,inversion", "--grid", "seed=0",
             "--workers", "1", "--backend", "serial"]

    def test_sweep_reports_cold_build_then_reload(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.setenv("DNN_LIFE_STREAM_CACHE", "0")  # all traffic via store
        argv = ["--stream-store", str(tmp_path / "streams"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv + self.SWEEP) == 0
        out = capsys.readouterr().out
        assert "1 cold build(s) persisted" in out
        assert "[backend serial]" in out
        # warm rerun, result cache bypassed: the store serves the stream
        assert main(argv + ["--no-cache"] + self.SWEEP) == 0
        out = capsys.readouterr().out
        assert "0 cold build(s) persisted" in out
        assert "2 hit(s)" in out

    def test_cache_streams_lists_entries(self, tmp_path, capsys):
        argv = ["--stream-store", str(tmp_path / "streams"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv + self.SWEEP) == 0
        capsys.readouterr()
        assert main(argv + ["cache", "--streams"]) == 0
        out = capsys.readouterr().out
        assert "1 entr(ies)" in out
        assert "custom_mnist" in out
        assert "8KB/8b" in out

    def test_cache_streams_clear_and_gc(self, tmp_path, capsys):
        argv = ["--stream-store", str(tmp_path / "streams"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv + self.SWEEP) == 0
        capsys.readouterr()
        assert main(argv + ["cache", "--streams", "--gc-days", "7"]) == 0
        assert "gc removed 0 stream entr(ies)" in capsys.readouterr().out
        assert main(argv + ["cache", "--streams", "--clear"]) == 0
        assert "removed 1 stream entr(ies)" in capsys.readouterr().out
        assert main(argv + ["cache", "--streams"]) == 0
        assert "0 entr(ies)" in capsys.readouterr().out

    def test_cache_streams_reports_reclaimed_orphans(self, tmp_path, capsys):
        import os
        import time

        from repro.streamstore import ORPHAN_AGE_GUARD_SECONDS

        argv = ["--stream-store", str(tmp_path / "streams"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv + self.SWEEP) == 0
        capsys.readouterr()
        # strand the payload (the pre-fix leak) and age it past the guard
        bucket = next((tmp_path / "streams").glob("??"))
        manifest = next(bucket.glob("*.json"))
        payload = manifest.with_suffix(".bin")
        manifest.unlink()
        stamp = time.time() - 2 * ORPHAN_AGE_GUARD_SECONDS
        os.utime(payload, times=(stamp, stamp))
        # the table view surfaces the orphaned footprint...
        assert main(argv + ["cache", "--streams"]) == 0
        assert "orphaned:" in capsys.readouterr().out
        # ...and --clear reports what it reclaimed
        assert main(argv + ["cache", "--streams", "--clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 0 stream entr(ies)" in out
        assert "reclaimed 1 orphaned file(s)" in out
        assert not payload.exists()

    def test_no_stream_store_disables(self, capsys):
        assert main(["--no-stream-store", "cache", "--streams"]) == 0
        assert "stream store disabled" in capsys.readouterr().out

    def test_no_stream_store_sweep_omits_accounting(self, tmp_path, capsys):
        argv = ["--no-stream-store", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv + self.SWEEP) == 0
        assert "stream store at" not in capsys.readouterr().out

    def test_dask_backend_unavailable_is_usage_error(self, capsys):
        try:
            import dask.distributed  # noqa: F401
            pytest.skip("dask.distributed is installed here")
        except ImportError:
            pass
        code = main(["sweep", "aging", "--grid", "policy=none",
                     "--backend", "dask"])
        assert code == 2
        err = capsys.readouterr().err
        assert "dask.distributed" in err
        assert "Traceback" not in err

    def test_unknown_backend_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "aging", "--backend", "threads"])
