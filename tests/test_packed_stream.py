"""Tests for the packed bit-tensor weight-stream representation."""

import numpy as np
import pytest

from repro.accelerator.scheduler import (
    CachedWeightStream,
    PackedBitTensor,
    WeightStreamScheduler,
    as_stride_indexer,
    block_axis_sum,
    packed_bit_tensor,
)
from repro.quantization.bitops import unpack_bits


class TestPackedBitTensor:
    def test_matches_per_block_unpacking(self, tiny_scheduler):
        packed = PackedBitTensor.from_stream(tiny_scheduler)
        blocks = list(tiny_scheduler.iter_blocks())
        assert packed.num_blocks == len(blocks)
        assert packed.bits.shape == (len(blocks), tiny_scheduler.words_per_block,
                                     tiny_scheduler.geometry.word_bits)
        assert packed.bits.dtype == np.uint8
        for index, block in enumerate(blocks):
            expected = unpack_bits(block.words, tiny_scheduler.geometry.word_bits)
            assert np.array_equal(packed.bits[index], expected)
            assert packed.regions[index] == block.region
            assert packed.valid_words[index] == block.num_words

    def test_word_offsets_are_cumulative(self, tiny_scheduler):
        packed = PackedBitTensor.from_stream(tiny_scheduler)
        assert packed.word_offsets[0] == 0
        assert np.array_equal(np.diff(packed.word_offsets),
                              packed.valid_words[:-1])
        assert packed.total_words == int(packed.valid_words.sum())

    def test_unpadded_final_block(self, tiny_network, tiny_scheduler):
        scheduler = WeightStreamScheduler(
            tiny_network, "int8_symmetric", tiny_scheduler.geometry,
            tiny_scheduler.parallel_filters, pad_final_block=False)
        packed = PackedBitTensor.from_stream(scheduler)
        final = packed.num_blocks - 1
        assert packed.valid_words[final] < packed.words_per_block
        # the padding bits are zero and masked out of the valid map
        mask = packed.valid_mask()
        assert not mask[final, packed.valid_words[final]:].any()
        assert not packed.bits[final, packed.valid_words[final]:].any()
        assert mask[:final].all()

    def test_fifo_regions(self, tiny_fifo_scheduler):
        packed = PackedBitTensor.from_stream(tiny_fifo_scheduler)
        assert packed.fifo_depth_tiles == 4
        expected = np.arange(packed.num_blocks) % 4
        assert np.array_equal(packed.regions, expected)
        for region in range(4):
            assert np.array_equal(packed.region_blocks(region),
                                  np.flatnonzero(expected == region))

    def test_cached_stream_shares_one_tensor(self, tiny_scheduler):
        stream = CachedWeightStream(tiny_scheduler)
        first = stream.packed_bits()
        assert stream.packed_bits() is first
        assert packed_bit_tensor(stream) is first
        # a bare scheduler gets packed on the fly
        fresh = packed_bit_tensor(tiny_scheduler)
        assert fresh is not first
        assert np.array_equal(fresh.bits, first.bits)

    def test_rows_sums_are_cached_and_exact(self, tiny_fifo_scheduler):
        packed = PackedBitTensor.from_stream(tiny_fifo_scheduler)
        ones = packed.rows_ones()
        assert packed.rows_ones() is ones
        rows = tiny_fifo_scheduler.geometry.rows
        words = packed.words_per_block
        expected = np.zeros((rows, packed.word_bits))
        counts = np.zeros(rows)
        for index in range(packed.num_blocks):
            start = packed.regions[index] * words
            expected[start:start + words] += packed.bits[index]
            counts[start:start + words] += packed.valid_mask()[index]
        assert np.array_equal(ones, expected)
        assert np.array_equal(packed.rows_writes(), counts)


class TestReductionHelpers:
    def test_block_axis_sum_matches_numpy(self, rng):
        array = rng.integers(0, 2, size=(7, 33, 9), dtype=np.uint8)
        assert np.array_equal(block_axis_sum(array),
                              array.sum(axis=0, dtype=np.float64))

    def test_block_axis_sum_weighted(self, rng):
        array = rng.integers(0, 2, size=(5, 17, 6), dtype=np.uint8)
        weights = rng.integers(0, 100, size=(5, 17))
        expected = np.einsum("bwn,bw->wn", array.astype(np.float64),
                             weights.astype(np.float64))
        assert np.array_equal(block_axis_sum(array, weights), expected)
        # float weights take the einsum path and agree
        assert np.allclose(block_axis_sum(array, weights.astype(np.float64)),
                           expected)

    def test_block_axis_sum_uint16_needs_declared_bound(self, rng):
        """Non-binary uint8 data must not take the uint16 fast path blindly:
        1000 blocks of value 100 would wrap mod 65536."""
        array = np.full((1000, 4), 100, dtype=np.uint8)
        assert np.array_equal(block_axis_sum(array), np.full(4, 100_000.0))
        assert np.array_equal(block_axis_sum(array, max_value=100),
                              np.full(4, 100_000.0))

    def test_block_axis_sum_weighted_respects_value_bound(self, rng):
        # values up to 100 with unit weights over 1000 blocks exceed the
        # uint16 budget; the reduction must stay exact regardless
        view = np.full((1000, 3, 2), 1, dtype=np.uint8)
        weights = np.full((1000, 3), 100, dtype=np.int64)
        assert np.array_equal(block_axis_sum(view, weights, max_value=1),
                              np.full((3, 2), 100_000.0))

    def test_block_axis_sum_weighted_2d(self, rng):
        array = rng.integers(0, 50, size=(4, 21)).astype(np.float64)
        weights = rng.integers(0, 3, size=(4, 21)).astype(np.float64)
        assert np.array_equal(block_axis_sum(array, weights),
                              (array * weights).sum(axis=0))

    def test_as_stride_indexer(self):
        array = np.arange(40).reshape(20, 2)
        for indices in ([0], [3, 7, 11], [2, 3, 4], [1, 5, 6]):
            indexer = as_stride_indexer(np.asarray(indices))
            assert np.array_equal(array[indexer], array[np.asarray(indices)])
        assert isinstance(as_stride_indexer(np.asarray([3, 7, 11])), slice)
        assert not isinstance(as_stride_indexer(np.asarray([1, 5, 6])), slice)
        assert as_stride_indexer(np.asarray([], dtype=np.int64)).size == 0


class TestFromStreamValidation:
    def test_block_count_must_match_declaration(self, tiny_scheduler):
        class LyingStream:
            geometry = tiny_scheduler.geometry
            words_per_block = tiny_scheduler.words_per_block
            fifo_depth_tiles = 1
            num_blocks = tiny_scheduler.num_blocks + 3

            def iter_blocks(self):
                return tiny_scheduler.iter_blocks()

        with pytest.raises(ValueError, match="declared"):
            PackedBitTensor.from_stream(LyingStream())

    def test_oversized_block_rejected(self, tiny_scheduler):
        from repro.accelerator.scheduler import WeightBlock

        class OversizedStream:
            geometry = tiny_scheduler.geometry
            words_per_block = 4
            fifo_depth_tiles = 1
            num_blocks = 1

            def iter_blocks(self):
                yield WeightBlock(index=0, words=np.zeros(9, dtype=np.uint64))

        with pytest.raises(ValueError, match="at most"):
            PackedBitTensor.from_stream(OversizedStream())


class TestReadOnlySharedBuffers:
    """The cached packed buffers are frozen: mutation raises, it never lands.

    This is the runtime half of lint rule DL004 — the tensors are shared
    across policy evaluations (and, with stream affinity, across sweep
    jobs), so an in-place write must fail at the write site.
    """

    def test_packed_arrays_are_read_only(self, tiny_scheduler):
        packed = PackedBitTensor.from_stream(tiny_scheduler)
        for array in (packed.bits, packed.regions, packed.valid_words,
                      packed.word_offsets):
            assert not array.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                array[0] = 0

    def test_cached_reductions_are_read_only(self, tiny_scheduler):
        packed = PackedBitTensor.from_stream(tiny_scheduler)
        for array in (packed.rows_ones(), packed.rows_writes(),
                      packed.valid_mask()):
            assert not array.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                array[...] = 0

    def test_in_place_operator_raises(self, tiny_scheduler):
        packed = PackedBitTensor.from_stream(tiny_scheduler)
        ones = packed.rows_ones()
        with pytest.raises(ValueError, match="read-only"):
            ones += 1.0
        # the shared tensor is untouched by the failed attempt
        assert np.array_equal(ones, packed.rows_ones())

    def test_cached_stream_block_words_are_read_only(self, tiny_scheduler):
        stream = CachedWeightStream(tiny_scheduler)
        block = next(iter(stream.iter_blocks()))
        assert not block.words.flags.writeable
        with pytest.raises(ValueError, match="read-only"):
            block.words[0] = 0

    def test_copies_stay_writable(self, tiny_scheduler):
        packed = PackedBitTensor.from_stream(tiny_scheduler)
        scratch = packed.rows_ones().copy()
        scratch += 1.0  # the sanctioned pattern: mutate a private copy
        assert scratch.flags.writeable
