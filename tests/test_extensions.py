"""Tests for the extension modules: tiling optimiser, wear maps, quantization
calibration and the workload report generator."""

import numpy as np
import pytest

from repro.accelerator.config import baseline_config
from repro.accelerator.tiling_optimizer import TilingOptimizer
from repro.analysis.report import WorkloadReport, generate_report
from repro.core.framework import DnnLife
from repro.core.policies import DnnLifePolicy, NoMitigationPolicy
from repro.core.simulation import AgingSimulator
from repro.memory.wear_map import WearMap, wear_map_from_result
from repro.nn.layers import Conv2d, Linear
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.quantization.calibration import (
    calibrated_words,
    calibration_report,
    mse_symmetric_params,
    percentile_symmetric_params,
)
from repro.quantization.linear import compute_symmetric_params, quantization_error


class TestTilingOptimizer:
    @pytest.fixture
    def optimizer(self):
        return TilingOptimizer(baseline_config(), bytes_per_weight=1.0)

    def test_conv_candidates_respect_capacity(self, optimizer):
        layer = Conv2d(name="c", out_channels=64, in_channels=64, kernel_size=(3, 3))
        candidates = list(optimizer.candidates_for_conv(layer, (64, 56, 56)))
        assert candidates
        weight_capacity = baseline_config().weight_memory_bytes
        for candidate in candidates:
            resident = candidate.tile.weights_per_filter * min(8, 64)
            assert resident <= weight_capacity

    def test_optimize_layer_picks_minimum_traffic(self, optimizer):
        layer = Conv2d(name="c", out_channels=64, in_channels=64, kernel_size=(3, 3))
        solution = optimizer.optimize_layer(layer, (64, 56, 56))
        assert solution.best.total_dram_traffic_bytes == min(
            candidate.total_dram_traffic_bytes for candidate in solution.candidates)
        assert solution.traffic_reduction_vs_worst >= 1.0

    def test_conv_requires_input_shape(self, optimizer):
        layer = Conv2d(name="c", out_channels=8, in_channels=8, kernel_size=(3, 3))
        with pytest.raises(ValueError):
            optimizer.optimize_layer(layer)

    def test_linear_candidates(self, optimizer):
        layer = Linear(name="fc", out_features=128, in_features=1024)
        solution = optimizer.optimize_layer(layer)
        assert solution.best.weight_traffic_bytes >= layer.weight_count
        assert 0 < solution.best.pe_utilization <= 1.0

    def test_unsupported_layer_type(self, optimizer):
        from repro.nn.layers import ReLU

        with pytest.raises(TypeError):
            optimizer.optimize_layer(ReLU(name="r"))

    def test_optimize_network_covers_all_weight_layers(self, optimizer, mnist_network):
        solutions = optimizer.optimize_network(mnist_network)
        assert len(solutions) == len(mnist_network.weight_layers())
        assert optimizer.total_dram_traffic(mnist_network) > 0

    def test_weight_dominated_layer_prefers_large_tiles(self, optimizer):
        # With a huge activation buffer and a weight-dominated FC layer, the
        # optimiser should avoid splitting channels (no partial-sum spills).
        layer = Linear(name="fc", out_features=64, in_features=4096)
        solution = optimizer.optimize_layer(layer)
        assert solution.best.partial_sum_traffic_bytes == 0.0


class TestWearMap:
    def test_summary_identifies_worst_column(self):
        duty = np.full((64, 8), 0.5)
        duty[:, 3] = 0.95  # one badly unbalanced bit column
        wear = WearMap(duty_cycles=duty)
        summary = wear.summary()
        assert summary["worst_bit_column"] == 3
        assert summary["column_imbalance_pp"] > 5.0

    def test_per_region(self):
        duty = np.full((64, 8), 0.5)
        duty[48:] = 1.0  # last region fully stressed
        wear = WearMap(duty_cycles=duty, num_regions=4)
        per_region = wear.per_region()
        assert per_region.shape == (4,)
        assert np.argmax(per_region) == 3
        assert wear.summary()["worst_region"] == 3

    def test_worst_cells(self):
        duty = np.full((16, 8), 0.5)
        duty[5, 2] = 1.0
        worst = WearMap(duty_cycles=duty).worst_cells(1)
        assert worst["rows"][0] == 5 and worst["bit_columns"][0] == 2

    def test_render_contains_scale(self):
        duty = np.random.default_rng(0).random((128, 8))
        text = WearMap(duty_cycles=duty).render(max_rows=8)
        assert "Wear map" in text and "scale" in text
        assert len(text.splitlines()) <= 11

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            WearMap(duty_cycles=np.zeros(10))
        with pytest.raises(ValueError):
            WearMap(duty_cycles=np.zeros((10, 8)), num_regions=3)

    def test_nan_duty_does_not_poison_aggregations(self):
        """duty_cycles(default=None) carries NaN for never-written cells."""
        duty = np.full((16, 8), 0.5)
        duty[8:] = np.nan  # half the memory never written
        wear = WearMap(duty_cycles=duty, num_regions=2)
        summary = wear.summary()
        assert summary["coverage"] == pytest.approx(0.5)
        assert np.isfinite(summary["mean_degradation_percent"])
        assert np.isfinite(summary["max_degradation_percent"])
        assert np.isfinite(summary["column_imbalance_pp"])
        assert np.isfinite(wear.per_bit_column()).all()
        per_region = wear.per_region()
        assert np.isfinite(per_region[0]) and np.isnan(per_region[1])

    def test_nan_cells_never_rank_as_worst(self):
        duty = np.full((16, 8), 0.5)
        duty[0, 0] = np.nan
        duty[5, 2] = 1.0
        worst = WearMap(duty_cycles=duty).worst_cells(1)
        assert worst["rows"][0] == 5 and worst["bit_columns"][0] == 2

    def test_nan_region_renders_as_question_marks(self):
        duty = np.full((8, 4), np.nan)
        duty[:4] = 0.5
        text = WearMap(duty_cycles=duty).render(max_rows=2)
        assert "|????|" in text

    def test_render_labels_never_inverted(self):
        """Small/odd row counts: strictly increasing, gap-free bucket labels."""
        import re

        for rows in (1, 2, 3, 5, 7, 13, 33):
            duty = np.full((rows, 4), 0.5)
            text = WearMap(duty_cycles=duty).render(max_rows=8)
            spans = [(int(low), int(high)) for low, high in
                     re.findall(r"rows\s+(\d+)-\s*(\d+)", text)]
            assert spans, text
            assert spans[0][0] == 0 and spans[-1][1] == rows - 1
            previous_end = -1
            for low, high in spans:
                assert low <= high  # no inverted "rows X-(X-1)" labels
                assert low == previous_end + 1  # contiguous, no empty buckets
                previous_end = high

    def test_from_aging_result(self, tiny_fifo_scheduler):
        result = AgingSimulator(tiny_fifo_scheduler, NoMitigationPolicy(),
                                num_inferences=1).run()
        wear = wear_map_from_result(result, num_regions=4)
        assert wear.per_region().shape == (4,)

    def test_dnn_life_flattens_wear(self, tiny_fp32_scheduler):
        baseline = AgingSimulator(tiny_fp32_scheduler, NoMitigationPolicy(),
                                  num_inferences=10, seed=0).run()
        mitigated = AgingSimulator(tiny_fp32_scheduler, DnnLifePolicy(32, seed=0),
                                   num_inferences=10, seed=0).run()
        assert (wear_map_from_result(mitigated).summary()["column_imbalance_pp"]
                < wear_map_from_result(baseline).summary()["column_imbalance_pp"])


class TestCalibration:
    @pytest.fixture
    def heavy_tailed_weights(self, rng):
        values = rng.normal(size=20000) * 0.02
        values[:20] = rng.normal(size=20) * 0.5  # a few large outliers
        return values

    def test_percentile_clips_range(self, heavy_tailed_weights):
        minmax = compute_symmetric_params(heavy_tailed_weights, 8)
        clipped = percentile_symmetric_params(heavy_tailed_weights, 8, percentile=99.0)
        assert clipped.scale < minmax.scale

    def test_percentile_improves_bulk_resolution(self, heavy_tailed_weights):
        # Clipping the range at a percentile gives the (non-outlier) bulk of
        # the weights a much finer resolution than min/max calibration.
        clipped = percentile_symmetric_params(heavy_tailed_weights, 8, percentile=99.0)
        minmax = compute_symmetric_params(heavy_tailed_weights, 8)
        bulk = heavy_tailed_weights[
            np.abs(heavy_tailed_weights) <= clipped.scale * clipped.qmax]
        bulk_error_clipped = quantization_error(bulk, params=clipped)
        bulk_error_minmax = quantization_error(bulk, params=minmax)
        assert bulk_error_clipped < bulk_error_minmax

    def test_mse_never_worse_than_minmax(self, heavy_tailed_weights):
        mse_params = mse_symmetric_params(heavy_tailed_weights, 8)
        mse_error = quantization_error(heavy_tailed_weights, params=mse_params)
        minmax_error = quantization_error(heavy_tailed_weights, symmetric=True)
        assert mse_error <= minmax_error + 1e-12

    def test_calibration_report_structure(self, heavy_tailed_weights):
        report = calibration_report(heavy_tailed_weights, 8)
        assert set(report) == {"minmax", "percentile_99.9", "mse"}
        for entry in report.values():
            assert 0 < entry["clip_fraction_of_max"] <= 1.0 + 1e-9
            assert entry["rms_error"] >= 0

    def test_calibrated_words_fit_width(self, heavy_tailed_weights):
        params = percentile_symmetric_params(heavy_tailed_weights, 8)
        words, _ = calibrated_words(heavy_tailed_weights, params)
        assert int(words.max()) < 256

    def test_empty_and_constant_inputs(self):
        assert percentile_symmetric_params(np.array([]), 8).scale == 1.0
        assert mse_symmetric_params(np.zeros(10), 8).scale == 1.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            percentile_symmetric_params(np.ones(4), 8, percentile=10.0)


class TestWorkloadReport:
    @pytest.fixture
    def framework(self, mnist_network):
        return DnnLife(mnist_network, data_format="int8_symmetric",
                       num_inferences=10, seed=0)

    def test_render_contains_all_sections(self, framework):
        text = generate_report(framework, policies=["none", "dnn_life"])
        assert "Weight-bit distribution" in text
        assert "Aging mitigation policies" in text
        assert "Spatial wear" in text
        assert "Mitigation hardware" in text
        assert "dnn_life" in text or "DNN-Life" in text

    def test_summary_structure(self, framework):
        report = WorkloadReport(framework, policies=["none", "dnn_life"])
        summary = report.summary()
        assert "dnn_life" in summary["best_policy"] or "DNN-Life" in summary["best_policy"]
        assert set(summary["energy_overhead"]) == {"none", "inversion",
                                                   "barrel_shifter", "dnn_life"}
        assert summary["best_policy_duty_cycle"]["mean_abs_deviation"] < 0.25

    def test_comparison_is_computed_once(self, framework):
        report = WorkloadReport(framework, policies=["none", "dnn_life"])
        assert report.comparison is report.comparison
