"""Tests for repro.quantization.{float32, linear, fixed_point, formats}."""

import numpy as np
import pytest

from repro.quantization.fixed_point import (
    FixedPointFormat,
    best_fixed_point_format,
    quantize_fixed_point,
)
from repro.quantization.float32 import (
    decompose_float32,
    exponent_value_distribution,
    float32_to_words,
    words_to_float32,
)
from repro.quantization.formats import PAPER_FORMATS, available_formats, get_format, register_format
from repro.quantization.linear import (
    AsymmetricQuantizer,
    SymmetricQuantizer,
    compute_asymmetric_params,
    compute_symmetric_params,
    dequantize_with_params,
    levels_to_words,
    quantization_error,
    quantize_with_params,
    words_to_levels,
)


class TestFloat32:
    def test_word_roundtrip(self, rng):
        values = rng.normal(size=1000).astype(np.float32)
        assert np.array_equal(words_to_float32(float32_to_words(values)), values)

    def test_known_patterns(self):
        assert float32_to_words(np.array([0.0], dtype=np.float32))[0] == 0
        assert float32_to_words(np.array([1.0], dtype=np.float32))[0] == 0x3F800000
        assert float32_to_words(np.array([-2.0], dtype=np.float32))[0] == 0xC0000000

    def test_decomposition_fields(self):
        fields = decompose_float32(np.array([1.5, -1.5], dtype=np.float32))
        assert fields.sign.tolist() == [0, 1]
        assert fields.exponent.tolist() == [127, 127]
        assert fields.mantissa.tolist() == [0x400000, 0x400000]

    def test_decomposition_reconstructs(self, rng):
        values = rng.normal(size=256).astype(np.float32)
        assert np.array_equal(decompose_float32(values).reconstruct(), values)

    def test_small_weights_have_biased_exponent_msb(self, rng):
        # Trained-DNN-like weights are all well below 2.0 in magnitude, so the
        # exponent MSB (bit 30) is essentially always zero — the property that
        # makes float32 storage age-unfriendly without mitigation.
        values = (rng.normal(size=10000) * 0.05).astype(np.float32)
        words = float32_to_words(values)
        from repro.quantization.bitops import bit_probabilities

        probabilities = bit_probabilities(words, 32)
        assert probabilities[30] < 0.01
        # and mantissa LSBs are balanced
        assert abs(probabilities[0] - 0.5) < 0.05

    def test_exponent_histogram_sums_to_count(self, rng):
        values = rng.normal(size=500).astype(np.float32)
        assert exponent_value_distribution(values).sum() == 500


class TestSymmetricQuantization:
    def test_zero_point_is_zero(self, rng):
        params = compute_symmetric_params(rng.normal(size=100), 8)
        assert params.zero_point == 0
        assert params.signed

    def test_range_limits(self):
        params = compute_symmetric_params(np.array([-1.0, 1.0]), 8)
        assert params.qmin == -127 and params.qmax == 127

    def test_levels_within_range(self, rng):
        quantizer = SymmetricQuantizer(8)
        levels, params = quantizer.quantize(rng.normal(size=1000) * 0.1)
        assert levels.min() >= params.qmin and levels.max() <= params.qmax

    def test_roundtrip_error_bounded_by_scale(self, rng):
        values = rng.normal(size=1000) * 0.2
        levels, params = SymmetricQuantizer(8).quantize(values)
        reconstructed = dequantize_with_params(levels, params)
        assert np.max(np.abs(values - reconstructed)) <= params.scale * 0.5 + 1e-12

    def test_extreme_value_is_exact(self):
        values = np.array([-0.5, 0.25, 0.5])
        levels, params = SymmetricQuantizer(8).quantize(values)
        assert dequantize_with_params(levels, params)[2] == pytest.approx(0.5, rel=1e-6)

    def test_words_are_twos_complement(self):
        params = compute_symmetric_params(np.array([-1.0, 1.0]), 8)
        words = levels_to_words(np.array([-1, -127, 5]), params)
        assert words.tolist() == [0xFF, 0x81, 0x05]
        assert words_to_levels(words, params).tolist() == [-1, -127, 5]

    def test_per_channel_quantization(self, rng):
        values = rng.normal(size=(4, 10)) * np.array([[0.1], [1.0], [5.0], [0.01]])
        quantizer = SymmetricQuantizer(8, per_channel=True, channel_axis=0)
        levels, _ = quantizer.quantize(values)
        assert levels.shape == values.shape
        params = quantizer.channel_params(values)
        assert len(params) == 4
        assert params[2].scale > params[3].scale

    def test_empty_input(self):
        params = compute_symmetric_params(np.array([]), 8)
        assert params.scale == 1.0

    def test_quantization_error_positive(self, rng):
        assert quantization_error(rng.normal(size=100)) > 0.0


class TestAsymmetricQuantization:
    def test_unsigned_range(self, rng):
        levels, params = AsymmetricQuantizer(8).quantize(rng.normal(size=500))
        assert not params.signed
        assert levels.min() >= 0 and levels.max() <= 255

    def test_zero_is_representable(self, rng):
        values = rng.normal(size=500) * 0.3
        levels, params = AsymmetricQuantizer(8).quantize(values)
        zero_level = quantize_with_params(np.array([0.0]), params)[0]
        assert dequantize_with_params(np.array([zero_level]), params)[0] == pytest.approx(0.0,
                                                                                          abs=1e-9)

    def test_asymmetric_range_shifts_zero_point(self):
        values = np.array([-0.1, 0.0, 0.9])  # strongly asymmetric range
        _, params = AsymmetricQuantizer(8).quantize(values)
        assert 0 < params.zero_point < 128

    def test_min_max_mapped_to_extremes(self):
        values = np.array([-1.0, 0.0, 3.0])
        levels, params = AsymmetricQuantizer(8).quantize(values)
        assert levels[0] == params.qmin and levels[-1] == params.qmax


class TestFixedPoint:
    def test_word_bits(self):
        assert FixedPointFormat(1, 7).word_bits == 8
        assert FixedPointFormat(2, 14).word_bits == 16

    def test_resolution_and_limits(self):
        fmt = FixedPointFormat(1, 7)
        assert fmt.resolution == pytest.approx(1 / 128)
        assert fmt.max_value == pytest.approx(127 / 128)
        assert fmt.min_value == pytest.approx(-1.0)

    def test_roundtrip(self, rng):
        values = rng.uniform(-0.9, 0.9, size=200)
        fmt = FixedPointFormat(1, 7)
        recovered = fmt.from_words(fmt.to_words(values))
        assert np.max(np.abs(values - recovered)) <= fmt.resolution

    def test_clipping(self):
        fmt = FixedPointFormat(1, 7)
        assert fmt.quantize(np.array([10.0]))[0] == 127
        assert fmt.quantize(np.array([-10.0]))[0] == -128

    def test_quantize_fixed_point_helper(self):
        levels, fmt = quantize_fixed_point(np.array([0.5]), 2, 6)
        assert fmt.word_bits == 8
        assert levels[0] == 32

    def test_best_format_covers_range(self, rng):
        values = rng.normal(size=100) * 3.0
        fmt = best_fixed_point_format(values, 8)
        assert fmt.max_value >= np.abs(values).max() or fmt.integer_bits == 8

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 8)
        with pytest.raises(ValueError):
            FixedPointFormat(1, -1)


class TestFormatRegistry:
    def test_paper_formats_registered(self):
        for name in PAPER_FORMATS:
            assert name in available_formats()

    def test_word_bits(self):
        assert get_format("float32").word_bits == 32
        assert get_format("int8_symmetric").word_bits == 8
        assert get_format("int8_asymmetric").word_bits == 8

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            get_format("int3_magic")

    def test_duplicate_registration_rejected(self):
        existing = get_format("float32")
        with pytest.raises(ValueError):
            register_format(existing)

    def test_to_words_and_decoder_roundtrip(self, rng):
        values = (rng.normal(size=300) * 0.1).astype(np.float32)
        for name in PAPER_FORMATS:
            data_format = get_format(name)
            words, decode = data_format.to_words_with_decoder(values)
            assert words.shape == (300,)
            recovered = decode(words)
            # Quantized formats are lossy but must stay within one scale step.
            assert np.max(np.abs(recovered - values)) < 0.05

    def test_float32_words_are_exact(self, rng):
        values = rng.normal(size=64).astype(np.float32)
        data_format = get_format("float32")
        words, decode = data_format.to_words_with_decoder(values)
        assert np.array_equal(decode(words), values)

    def test_bytes_per_weight(self):
        assert get_format("float32").bytes_per_weight == 4.0
        assert get_format("int8_symmetric").bytes_per_weight == 1.0
