"""Tests for repro.quantization.bitops."""

import numpy as np
import pytest

from repro.quantization.bitops import (
    bit_probabilities,
    hamming_weight,
    invert_words,
    pack_bits_to_words,
    pack_words_to_bits,
    random_words,
    rotate_words,
    unpack_bits,
    words_to_bitplanes,
)


class TestUnpackBits:
    def test_known_value_msb_first(self):
        bits = unpack_bits(np.array([0b1010]), word_bits=4)
        assert bits.tolist() == [[1, 0, 1, 0]]

    def test_known_value_lsb_first(self):
        bits = unpack_bits(np.array([0b1010]), word_bits=4, msb_first=False)
        assert bits.tolist() == [[0, 1, 0, 1]]

    def test_shape(self):
        assert unpack_bits(np.arange(10), word_bits=8).shape == (10, 8)

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError):
            unpack_bits(np.array([256]), word_bits=8)

    def test_invalid_word_bits_rejected(self):
        with pytest.raises(ValueError):
            unpack_bits(np.array([1]), word_bits=0)
        with pytest.raises(ValueError):
            unpack_bits(np.array([1]), word_bits=65)

    def test_roundtrip_with_pack(self, rng):
        words = rng.integers(0, 2**16, size=100, dtype=np.uint64)
        bits = pack_words_to_bits(words, 16)
        assert np.array_equal(pack_bits_to_words(bits, 16), words)

    def test_pack_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            pack_bits_to_words(np.array([0, 2, 1, 1]), 4)

    def test_pack_bits_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pack_bits_to_words(np.array([0, 1, 1]), 4)


class TestBitplanesAndProbabilities:
    def test_bitplanes_are_transposed_unpack(self, rng):
        words = rng.integers(0, 256, size=50, dtype=np.uint64)
        assert np.array_equal(words_to_bitplanes(words, 8),
                              unpack_bits(words, 8).T)

    def test_probabilities_all_zero_words(self):
        probabilities = bit_probabilities(np.zeros(10, dtype=np.uint64), 8)
        assert np.allclose(probabilities, 0.0)

    def test_probabilities_all_ones_words(self):
        probabilities = bit_probabilities(np.full(10, 0xFF, dtype=np.uint64), 8)
        assert np.allclose(probabilities, 1.0)

    def test_probabilities_lsb_first_indexing(self):
        # Words 0b0001: the '1' sits at bit-location 0 (LSB) as in Fig. 6.
        probabilities = bit_probabilities(np.full(4, 0b0001, dtype=np.uint64), 4)
        assert probabilities[0] == 1.0
        assert np.allclose(probabilities[1:], 0.0)

    def test_probabilities_empty_input_is_nan(self):
        assert np.all(np.isnan(bit_probabilities(np.empty(0, dtype=np.uint64), 8)))

    def test_uniform_random_words_near_half(self, rng):
        words = random_words(rng, 50000, 8)
        probabilities = bit_probabilities(words, 8)
        assert np.all(np.abs(probabilities - 0.5) < 0.02)

    def test_biased_random_words(self, rng):
        words = random_words(rng, 20000, 8, probability_of_one=0.9)
        assert np.all(bit_probabilities(words, 8) > 0.85)


class TestWordManipulation:
    def test_hamming_weight(self):
        assert hamming_weight(np.array([0b1011, 0b0000, 0b1111]), 4).tolist() == [3, 0, 4]

    def test_invert_words(self):
        assert invert_words(np.array([0b1010]), 4)[0] == 0b0101

    def test_invert_is_involution(self, rng):
        words = rng.integers(0, 2**12, size=64, dtype=np.uint64)
        assert np.array_equal(invert_words(invert_words(words, 12), 12), words)

    def test_rotate_by_zero_is_identity(self, rng):
        words = rng.integers(0, 256, size=32, dtype=np.uint64)
        assert np.array_equal(rotate_words(words, 8, 0), words)

    def test_rotate_known_value(self):
        assert rotate_words(np.array([0b0001]), 4, 1)[0] == 0b0010
        assert rotate_words(np.array([0b1000]), 4, 1)[0] == 0b0001

    def test_rotate_full_turn_is_identity(self, rng):
        words = rng.integers(0, 2**8, size=16, dtype=np.uint64)
        assert np.array_equal(rotate_words(words, 8, 8), words)

    def test_rotate_preserves_hamming_weight(self, rng):
        words = rng.integers(0, 2**8, size=64, dtype=np.uint64)
        rotated = rotate_words(words, 8, 3)
        assert np.array_equal(hamming_weight(words, 8), hamming_weight(rotated, 8))


class TestNarrowAccumulatorRegressions:
    """Overflow-shaped regressions behind lint rule DL003.

    ``unpack_bits`` yields uint8; any reduction over more than 255 set bits
    wraps if the accumulator stays 8 bits wide, and numpy's platform-default
    accumulator is only 32 bits on some targets.  The fixed call sites
    declare ``dtype=np.int64`` — these tests pin the exact wide results on
    inputs past the uint8 ceiling.
    """

    def test_hamming_weight_is_wide_and_exact_past_255_words(self):
        words = np.full(300, 0xFF, dtype=np.uint64)
        weights = hamming_weight(words, word_bits=8)
        assert weights.dtype == np.int64
        assert int(weights.sum()) == 300 * 8  # > 255: wraps in a uint8 accumulator

    def test_unpacked_bits_sum_with_declared_dtype(self):
        bits = unpack_bits(np.full(40, 0xFF, dtype=np.uint64), word_bits=8)
        assert bits.dtype == np.uint8
        total = bits.sum(dtype=np.int64)
        assert total.dtype == np.int64
        assert int(total) == 320  # 40 words x 8 ones, one step past the ceiling
