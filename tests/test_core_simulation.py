"""Tests for the aging simulators.

The key guarantee: the fast (vectorized, closed-form-over-inferences) engine
produces exactly the same per-cell duty-cycles as the explicit write-by-write
engine for the deterministic policies, and statistically equivalent results
for the stochastic DNN-Life policy.
"""

import numpy as np
import pytest

from repro.accelerator.scheduler import CachedWeightStream, WeightStreamScheduler
from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
)
from repro.core.simulation import (
    AgingResult,
    AgingSimulator,
    ExplicitAgingSimulator,
    _duty_from_counts,
)

DETERMINISTIC_POLICY_FACTORIES = {
    "none": lambda word_bits: NoMitigationPolicy(),
    "inversion": lambda word_bits: PeriodicInversionPolicy(word_bits, "write"),
    "inversion_per_location":
        lambda word_bits: PeriodicInversionPolicy(word_bits, "location"),
    "barrel_shifter": lambda word_bits: BarrelShifterPolicy(word_bits),
}


def _deterministic_policy(name, word_bits):
    return DETERMINISTIC_POLICY_FACTORIES[name](word_bits)


def _run_both(scheduler, policy_factory, num_inferences):
    fast = AgingSimulator(scheduler, policy_factory(), num_inferences=num_inferences,
                          seed=0).run()
    explicit = ExplicitAgingSimulator(scheduler, policy_factory(),
                                      num_inferences=num_inferences).run()
    return fast, explicit


class TestFastMatchesExplicit:
    @pytest.mark.parametrize("num_inferences", [1, 2, 5])
    def test_no_mitigation(self, tiny_scheduler, num_inferences):
        fast, explicit = _run_both(tiny_scheduler, NoMitigationPolicy, num_inferences)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    @pytest.mark.parametrize("num_inferences", [1, 2, 4])
    def test_inversion_write_granularity(self, tiny_scheduler, num_inferences):
        fast, explicit = _run_both(
            tiny_scheduler, lambda: PeriodicInversionPolicy(8, "write"), num_inferences)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    @pytest.mark.parametrize("num_inferences", [2, 4])
    def test_inversion_location_granularity(self, tiny_scheduler, num_inferences):
        fast, explicit = _run_both(
            tiny_scheduler, lambda: PeriodicInversionPolicy(8, "location"), num_inferences)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    @pytest.mark.parametrize("num_inferences", [1, 3])
    def test_barrel_shifter(self, tiny_scheduler, num_inferences):
        fast, explicit = _run_both(
            tiny_scheduler, lambda: BarrelShifterPolicy(8), num_inferences)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    def test_no_mitigation_float32(self, tiny_fp32_scheduler):
        fast, explicit = _run_both(tiny_fp32_scheduler, NoMitigationPolicy, 2)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    def test_inversion_float32(self, tiny_fp32_scheduler):
        fast, explicit = _run_both(
            tiny_fp32_scheduler, lambda: PeriodicInversionPolicy(32, "write"), 2)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    def test_barrel_shifter_float32(self, tiny_fp32_scheduler):
        fast, explicit = _run_both(tiny_fp32_scheduler, lambda: BarrelShifterPolicy(32), 2)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    def test_fifo_placement_no_mitigation(self, tiny_fifo_scheduler):
        fast, explicit = _run_both(tiny_fifo_scheduler, NoMitigationPolicy, 3)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    def test_fifo_placement_inversion(self, tiny_fifo_scheduler):
        fast, explicit = _run_both(
            tiny_fifo_scheduler, lambda: PeriodicInversionPolicy(8, "write"), 2)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    def test_fifo_placement_barrel(self, tiny_fifo_scheduler):
        fast, explicit = _run_both(tiny_fifo_scheduler, lambda: BarrelShifterPolicy(8), 2)
        assert np.allclose(fast.duty_cycles, explicit.duty_cycles)

    def test_dnn_life_statistically_equivalent(self, tiny_scheduler):
        # The stochastic policy cannot match draw-for-draw, but the mean
        # absolute deviation of the duty-cycle from 0.5 must agree closely.
        fast = AgingSimulator(tiny_scheduler, DnnLifePolicy(8, seed=3),
                              num_inferences=30, seed=3).run()
        explicit = ExplicitAgingSimulator(tiny_scheduler, DnnLifePolicy(8, seed=7),
                                          num_inferences=30).run()
        fast_dev = np.abs(fast.duty_cycles - 0.5).mean()
        explicit_dev = np.abs(explicit.duty_cycles - 0.5).mean()
        assert fast_dev == pytest.approx(explicit_dev, rel=0.1)


class TestSimulationProperties:
    def test_duty_cycles_within_unit_interval(self, tiny_scheduler):
        for policy in (NoMitigationPolicy(), PeriodicInversionPolicy(8),
                       BarrelShifterPolicy(8), DnnLifePolicy(8, seed=0)):
            result = AgingSimulator(tiny_scheduler, policy, num_inferences=4, seed=0).run()
            assert result.duty_cycles.shape == (tiny_scheduler.geometry.rows, 8)
            assert np.all((result.duty_cycles >= 0) & (result.duty_cycles <= 1))

    def test_no_mitigation_independent_of_inference_count(self, tiny_scheduler):
        one = AgingSimulator(tiny_scheduler, NoMitigationPolicy(), num_inferences=1).run()
        many = AgingSimulator(tiny_scheduler, NoMitigationPolicy(), num_inferences=50).run()
        assert np.allclose(one.duty_cycles, many.duty_cycles)

    def test_dnn_life_converges_towards_half(self, tiny_scheduler):
        short = AgingSimulator(tiny_scheduler, DnnLifePolicy(8, seed=0),
                               num_inferences=4, seed=0).run()
        long = AgingSimulator(tiny_scheduler, DnnLifePolicy(8, seed=0),
                              num_inferences=200, seed=0).run()
        assert (np.abs(long.duty_cycles - 0.5).mean()
                < np.abs(short.duty_cycles - 0.5).mean())

    def test_dnn_life_beats_no_mitigation(self, tiny_fp32_scheduler):
        baseline = AgingSimulator(tiny_fp32_scheduler, NoMitigationPolicy(),
                                  num_inferences=20, seed=0).run()
        mitigated = AgingSimulator(tiny_fp32_scheduler, DnnLifePolicy(32, seed=0),
                                   num_inferences=20, seed=0).run()
        assert (mitigated.snm_degradation().mean() < baseline.snm_degradation().mean())
        assert (np.abs(mitigated.duty_cycles - 0.5).mean()
                < np.abs(baseline.duty_cycles - 0.5).mean())

    def test_biased_trbg_without_balancing_is_worse(self, tiny_fp32_scheduler):
        balanced = AgingSimulator(tiny_fp32_scheduler,
                                  DnnLifePolicy(32, trbg_bias=0.7, bias_balancing=True, seed=0),
                                  num_inferences=50, seed=0).run()
        unbalanced = AgingSimulator(tiny_fp32_scheduler,
                                    DnnLifePolicy(32, trbg_bias=0.7, bias_balancing=False,
                                                  seed=0),
                                    num_inferences=50, seed=0).run()
        assert (balanced.snm_degradation().mean() < unbalanced.snm_degradation().mean())

    def test_explicit_checks_decode_transparency(self, tiny_scheduler):
        # The explicit engine verifies decode(encode(x)) == x for every block;
        # a policy violating it must be rejected.
        class BrokenPolicy(NoMitigationPolicy):
            name = "broken"

            def decode_block(self, encoded_words, metadata):
                return np.zeros_like(np.asarray(encoded_words))

        with pytest.raises(AssertionError):
            ExplicitAgingSimulator(tiny_scheduler, BrokenPolicy(), num_inferences=1).run()

    def test_unknown_policy_type_needs_explicit_engine(self, tiny_scheduler):
        from repro.core.policies import MitigationPolicy

        class ExoticPolicy(MitigationPolicy):
            name = "exotic"

            def encode_block(self, words, block_index, start_row=0):
                return np.asarray(words, dtype=np.uint64).reshape(-1).copy(), None

            def decode_block(self, encoded_words, metadata):
                return np.asarray(encoded_words, dtype=np.uint64).reshape(-1).copy()

        # The fast engine has no closed form for an unknown policy; the
        # explicit engine handles it fine.
        with pytest.raises(NotImplementedError):
            AgingSimulator(tiny_scheduler, ExoticPolicy(), num_inferences=1).run()
        result = ExplicitAgingSimulator(tiny_scheduler, ExoticPolicy(), num_inferences=1).run()
        assert result.policy_name == "exotic"

    def test_result_summary_fields(self, tiny_scheduler):
        result = AgingSimulator(tiny_scheduler, DnnLifePolicy(8, seed=0),
                                num_inferences=10, seed=0).run()
        summary = result.summary()
        assert summary["policy"] == "dnn_life"
        assert summary["num_cells"] == tiny_scheduler.geometry.num_cells
        assert 0 <= summary["percent_cells_near_best"] <= 100
        assert summary["mean_snm_degradation_percent"] <= summary["max_snm_degradation_percent"]

    def test_result_histogram_sums_to_100(self, tiny_scheduler):
        result = AgingSimulator(tiny_scheduler, NoMitigationPolicy(),
                                num_inferences=1, seed=0).run()
        percentages, edges, labels = result.histogram()
        assert np.sum(percentages) == pytest.approx(100.0)
        assert len(labels) == len(percentages) == edges.size - 1

    def test_duty_cycle_statistics(self, tiny_scheduler):
        result = AgingSimulator(tiny_scheduler, NoMitigationPolicy(), num_inferences=1).run()
        stats = result.duty_cycle_statistics()
        assert 0.0 <= stats["mean"] <= 1.0
        assert stats["max_abs_deviation_from_half"] <= 0.5 + 1e-9

    def test_aging_result_validates_shape(self):
        result = AgingResult(policy_name="x", policy_description={},
                             duty_cycles=np.array([[0.5, 0.25]]), num_inferences=1,
                             num_blocks=1)
        assert result.num_cells == 2
        degradation = result.snm_degradation()
        assert degradation[0] < degradation[1]

    def test_invalid_inference_count(self, tiny_scheduler):
        with pytest.raises(ValueError):
            AgingSimulator(tiny_scheduler, NoMitigationPolicy(), num_inferences=0)

    def test_unknown_engine_rejected(self, tiny_scheduler):
        with pytest.raises(ValueError, match="unknown engine"):
            AgingSimulator(tiny_scheduler, NoMitigationPolicy(), engine="quantum")


class TestPackedEngineEquivalence:
    """The packed whole-tensor kernels against the per-block engines.

    Deterministic policies must be *byte-identical* between the packed and
    blockwise fast engines, and exactly equal to the explicit write-by-write
    simulator — including FIFO placement and unpadded final blocks (which
    only the packed fast engine supports).
    """

    @pytest.mark.parametrize("policy_name",
                             sorted(DETERMINISTIC_POLICY_FACTORIES))
    @pytest.mark.parametrize("num_inferences", [1, 2, 5])
    def test_packed_byte_identical_to_blockwise(self, tiny_scheduler,
                                                policy_name, num_inferences):
        stream = CachedWeightStream(tiny_scheduler)
        packed = AgingSimulator(stream, _deterministic_policy(policy_name, 8),
                                num_inferences=num_inferences, seed=0,
                                engine="packed").run()
        blockwise = AgingSimulator(stream, _deterministic_policy(policy_name, 8),
                                   num_inferences=num_inferences, seed=0,
                                   engine="blockwise").run()
        assert np.array_equal(packed.duty_cycles, blockwise.duty_cycles)

    @pytest.mark.parametrize("policy_name",
                             sorted(DETERMINISTIC_POLICY_FACTORIES))
    def test_packed_byte_identical_on_fifo(self, tiny_fifo_scheduler, policy_name):
        stream = CachedWeightStream(tiny_fifo_scheduler)
        packed = AgingSimulator(stream, _deterministic_policy(policy_name, 8),
                                num_inferences=3, seed=0, engine="packed").run()
        blockwise = AgingSimulator(stream, _deterministic_policy(policy_name, 8),
                                   num_inferences=3, seed=0,
                                   engine="blockwise").run()
        assert np.array_equal(packed.duty_cycles, blockwise.duty_cycles)

    @pytest.mark.parametrize("fifo_depth_tiles", [1, 4])
    @pytest.mark.parametrize("policy_name",
                             sorted(DETERMINISTIC_POLICY_FACTORIES))
    @pytest.mark.parametrize("num_inferences", [1, 2, 5])
    def test_packed_matches_explicit_with_unpadded_final_block(
            self, tiny_network, tiny_scheduler, fifo_depth_tiles, policy_name,
            num_inferences):
        scheduler = WeightStreamScheduler(
            tiny_network, "int8_symmetric", tiny_scheduler.geometry,
            tiny_scheduler.parallel_filters, fifo_depth_tiles=fifo_depth_tiles,
            pad_final_block=False)
        blocks = list(scheduler.iter_blocks())
        assert blocks[-1].num_words < scheduler.words_per_block
        stream = CachedWeightStream(scheduler)
        packed = AgingSimulator(stream, _deterministic_policy(policy_name, 8),
                                num_inferences=num_inferences, seed=0,
                                engine="packed").run()
        explicit = ExplicitAgingSimulator(
            scheduler, _deterministic_policy(policy_name, 8),
            num_inferences=num_inferences).run()
        assert np.array_equal(packed.duty_cycles, explicit.duty_cycles)

    def test_blockwise_engine_rejects_unpadded_blocks(self, tiny_network,
                                                      tiny_scheduler):
        scheduler = WeightStreamScheduler(
            tiny_network, "int8_symmetric", tiny_scheduler.geometry,
            tiny_scheduler.parallel_filters, pad_final_block=False)
        simulator = AgingSimulator(scheduler, NoMitigationPolicy(),
                                   num_inferences=1, engine="blockwise")
        with pytest.raises(ValueError, match="padded"):
            simulator.run()

    def test_packed_dnn_life_distribution_matches_explicit(self, tiny_scheduler):
        fast = AgingSimulator(tiny_scheduler, DnnLifePolicy(8, seed=11),
                              num_inferences=30, seed=11, engine="packed").run()
        explicit = ExplicitAgingSimulator(tiny_scheduler, DnnLifePolicy(8, seed=5),
                                          num_inferences=30).run()
        fast_dev = np.abs(fast.duty_cycles - 0.5).mean()
        explicit_dev = np.abs(explicit.duty_cycles - 0.5).mean()
        assert fast_dev == pytest.approx(explicit_dev, rel=0.1)

    def test_packed_dnn_life_biased_trbg_distribution(self, tiny_scheduler):
        policy = DnnLifePolicy(8, trbg_bias=0.7, bias_balancing=True, seed=2)
        fast = AgingSimulator(tiny_scheduler, policy, num_inferences=40,
                              seed=2, engine="packed").run()
        reference = ExplicitAgingSimulator(
            tiny_scheduler, DnnLifePolicy(8, trbg_bias=0.7, bias_balancing=True,
                                          seed=13),
            num_inferences=40).run()
        fast_dev = np.abs(fast.duty_cycles - 0.5).mean()
        reference_dev = np.abs(reference.duty_cycles - 0.5).mean()
        assert fast_dev == pytest.approx(reference_dev, rel=0.15)

    def test_packed_tensor_shared_between_policies(self, tiny_scheduler):
        stream = CachedWeightStream(tiny_scheduler)
        first = AgingSimulator(stream, NoMitigationPolicy(), num_inferences=2)
        first.run()
        second = AgingSimulator(stream, BarrelShifterPolicy(8), num_inferences=2)
        second.run()
        assert first._packed() is second._packed()


class TestDutyFromCountsGuard:
    def test_valid_counts_pass(self):
        ones = np.array([[3.0, 0.0], [2.0, 4.0]])
        writes = np.array([4, 4])
        duty = _duty_from_counts(ones, writes)
        assert np.array_equal(duty, [[0.75, 0.0], [0.5, 1.0]])

    def test_unwritten_rows_are_zero(self):
        duty = _duty_from_counts(np.array([[1.0], [0.0]]), np.array([2, 0]))
        assert np.array_equal(duty, [[0.5], [0.0]])

    def test_numerator_overflow_raises(self):
        # a numerator-accounting bug (more ones than writes) must not be
        # silently clipped into [0, 1]
        with pytest.raises(FloatingPointError, match="numerator"):
            _duty_from_counts(np.array([[5.0]]), np.array([4]))

    def test_negative_numerator_raises(self):
        with pytest.raises(FloatingPointError, match="numerator"):
            _duty_from_counts(np.array([[-1.0]]), np.array([4]))

    def test_round_off_within_tolerance_is_clipped(self):
        duty = _duty_from_counts(np.array([[4.0 + 1e-12]]), np.array([4]))
        assert duty[0, 0] == 1.0
