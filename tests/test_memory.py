"""Tests for repro.memory (geometry, cell, SRAM array, traces, energy)."""

import numpy as np
import pytest

from repro.memory.cell import SixTransistorCell
from repro.memory.energy import MemoryEnergyModel, dram_access_energy, sram_access_energy
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SramArray
from repro.memory.trace import WriteRecord, WriteTrace
from repro.utils.units import KB


class TestGeometry:
    def test_baseline_512kb_int8(self):
        geometry = MemoryGeometry(capacity_bytes=512 * KB, word_bits=8)
        assert geometry.rows == 524288
        assert geometry.num_cells == 4 * 1024 * 1024 * 1

    def test_baseline_512kb_float32(self):
        geometry = MemoryGeometry(capacity_bytes=512 * KB, word_bits=32)
        assert geometry.rows == 131072
        assert geometry.num_cells == 512 * KB * 8

    def test_blocks_for(self):
        geometry = MemoryGeometry(capacity_bytes=64, word_bits=8)
        assert geometry.blocks_for(64) == 1
        assert geometry.blocks_for(65) == 2
        assert geometry.blocks_for(640) == 10

    def test_non_divisible_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryGeometry(capacity_bytes=3, word_bits=32)

    def test_str(self):
        assert "KB" in str(MemoryGeometry(capacity_bytes=2048, word_bits=8))


class TestSixTransistorCell:
    def test_duty_cycle_balanced(self):
        cell = SixTransistorCell()
        cell.write_and_hold(1, 5.0)
        cell.write_and_hold(0, 5.0)
        assert cell.duty_cycle == pytest.approx(0.5)
        assert cell.worst_case_stress_fraction == pytest.approx(0.5)

    def test_duty_cycle_all_ones(self):
        cell = SixTransistorCell()
        cell.write_and_hold(1, 10.0)
        assert cell.duty_cycle == 1.0
        assert cell.pmos1_stress_fraction == 1.0
        assert cell.pmos2_stress_fraction == 0.0

    def test_duty_cycle_undefined_before_hold(self):
        with pytest.raises(RuntimeError):
            _ = SixTransistorCell().duty_cycle

    def test_hold_requires_write(self):
        with pytest.raises(RuntimeError):
            SixTransistorCell().hold(1.0)

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            SixTransistorCell().write(2)

    def test_negative_duration_rejected(self):
        cell = SixTransistorCell()
        cell.write(1)
        with pytest.raises(ValueError):
            cell.hold(-1.0)

    def test_worst_case_stress_symmetric(self):
        cell = SixTransistorCell()
        cell.write_and_hold(1, 3.0)
        cell.write_and_hold(0, 7.0)
        assert cell.worst_case_stress_fraction == pytest.approx(0.7)


class TestSramArray:
    def test_write_block_and_duty(self, small_geometry):
        array = SramArray(small_geometry)
        ones = np.full(small_geometry.rows, 0xFF, dtype=np.uint64)
        zeros = np.zeros(small_geometry.rows, dtype=np.uint64)
        array.write_block(ones, residency=1.0)
        array.write_block(zeros, residency=1.0)
        array.finalize()
        assert np.allclose(array.duty_cycles(), 0.5)

    def test_unbalanced_residency(self, small_geometry):
        array = SramArray(small_geometry)
        array.write_block(np.full(small_geometry.rows, 0xFF, dtype=np.uint64), residency=3.0)
        array.write_block(np.zeros(small_geometry.rows, dtype=np.uint64), residency=1.0)
        array.finalize()
        assert np.allclose(array.duty_cycles(), 0.75)

    def test_partial_block_leaves_other_rows_unwritten(self, small_geometry):
        array = SramArray(small_geometry)
        array.write_block(np.full(8, 0xFF, dtype=np.uint64), residency=1.0)
        array.finalize()
        duty = array.duty_cycles()
        assert np.allclose(duty[:8], 1.0)
        # Unwritten rows held the initial zeros for the whole time.
        assert np.allclose(duty[8:], 0.0)

    def test_start_row_offsets(self, small_geometry):
        array = SramArray(small_geometry)
        array.write_block(np.full(8, 0xFF, dtype=np.uint64), residency=1.0, start_row=16)
        array.finalize()
        duty = array.duty_cycles()
        assert np.allclose(duty[16:24], 1.0)
        assert np.allclose(duty[:16], 0.0)

    def test_block_too_large_rejected(self, small_geometry):
        array = SramArray(small_geometry)
        with pytest.raises(ValueError):
            array.write_block(np.zeros(small_geometry.rows + 1, dtype=np.uint64))

    def test_read_back_content(self, small_geometry, rng):
        array = SramArray(small_geometry)
        words = rng.integers(0, 256, size=small_geometry.rows, dtype=np.uint64)
        array.write_block(words)
        assert np.array_equal(array.read_rows(np.arange(small_geometry.rows)), words)

    def test_row_index_bounds_checked(self, small_geometry):
        array = SramArray(small_geometry)
        with pytest.raises(IndexError):
            array.write_rows(np.array([small_geometry.rows]), np.array([1]))

    def test_negative_row_index_rejected_not_wrapped(self, small_geometry):
        """Negative indices must raise instead of wrapping to the last rows."""
        array = SramArray(small_geometry)
        with pytest.raises(IndexError):
            array.write_rows(np.array([-1]), np.array([0xFF], dtype=np.uint64))
        with pytest.raises(IndexError):
            array.read_rows(np.array([-1]))
        with pytest.raises(IndexError):
            array.read_rows(np.array([small_geometry.rows]))

    def test_duplicate_rows_in_one_write_rejected(self, small_geometry):
        """Duplicate rows would silently drop hold credits via fancy `+=`."""
        array = SramArray(small_geometry)
        with pytest.raises(ValueError):
            array.write_rows(np.array([3, 3]),
                             np.array([0x01, 0x02], dtype=np.uint64))

    def test_write_block_row_map_routes_rows(self, small_geometry):
        array = SramArray(small_geometry)
        row_map = np.roll(np.arange(small_geometry.rows), -4)
        words = np.arange(8, dtype=np.uint64)
        array.write_block(words, residency=1.0, row_map=row_map)
        array.finalize()
        assert np.array_equal(array.read_rows(row_map[np.arange(8)]), words)
        duty = array.duty_cycles(default=0.0)
        assert duty[row_map[1]].sum() > 0  # word 1 landed on its mapped row

    def test_write_block_row_map_must_cover_all_rows(self, small_geometry):
        array = SramArray(small_geometry)
        with pytest.raises(ValueError):
            array.write_block(np.zeros(4, dtype=np.uint64),
                              row_map=np.arange(4))

    def test_accumulate_block_interface(self, small_geometry):
        array = SramArray(small_geometry)
        shape = (small_geometry.rows, small_geometry.word_bits)
        array.accumulate_block(np.full(shape, 0.25), np.full(shape, 1.0))
        assert np.allclose(array.duty_cycles(), 0.25)

    def test_accumulate_block_validates(self, small_geometry):
        array = SramArray(small_geometry)
        shape = (small_geometry.rows, small_geometry.word_bits)
        with pytest.raises(ValueError):
            array.accumulate_block(np.full(shape, 2.0), np.full(shape, 1.0))

    def test_reset_history_keeps_content(self, small_geometry, rng):
        array = SramArray(small_geometry)
        words = rng.integers(0, 256, size=small_geometry.rows, dtype=np.uint64)
        array.write_block(words)
        array.reset_history()
        assert np.array_equal(array.read_rows(np.arange(small_geometry.rows)), words)
        assert np.all(np.isnan(array.duty_cycles()))

    def test_duty_default_fill(self, small_geometry):
        array = SramArray(small_geometry)
        assert np.allclose(array.duty_cycles(default=0.5), 0.5)


class TestWriteTrace:
    def test_replay_matches_direct_simulation(self, small_geometry, rng):
        words_a = rng.integers(0, 256, size=small_geometry.rows, dtype=np.uint64)
        words_b = rng.integers(0, 256, size=small_geometry.rows, dtype=np.uint64)
        trace = WriteTrace(word_bits=8)
        trace.append(WriteRecord(block_index=0, words=words_a))
        trace.append(WriteRecord(block_index=1, words=words_b))
        replayed = trace.replay(SramArray(small_geometry))

        direct = SramArray(small_geometry)
        direct.write_block(words_a)
        direct.write_block(words_b)
        direct.finalize()
        assert np.allclose(replayed.duty_cycles(), direct.duty_cycles())

    def test_word_width_mismatch_rejected(self, small_geometry):
        trace = WriteTrace(word_bits=16)
        with pytest.raises(ValueError):
            trace.replay(SramArray(small_geometry))

    def test_counts(self, rng):
        trace = WriteTrace(word_bits=8)
        trace.append(WriteRecord(block_index=0, words=rng.integers(0, 256, 10, dtype=np.uint64)))
        trace.append(WriteRecord(block_index=1, words=rng.integers(0, 256, 6, dtype=np.uint64)))
        assert len(trace) == 2
        assert trace.total_words_written == 16
        assert trace.total_bits_written == 128

    def test_save_load_roundtrip(self, tmp_path, rng):
        trace = WriteTrace(word_bits=8)
        trace.append(WriteRecord(block_index=0, residency=2.0, start_row=4,
                                 words=rng.integers(0, 256, 8, dtype=np.uint64),
                                 metadata=np.array([1, 0, 1, 0, 1, 0, 1, 0], dtype=np.uint8)))
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = WriteTrace.load(path)
        assert len(loaded) == 1
        record = loaded.records[0]
        assert record.residency == 2.0
        assert record.start_row == 4
        assert np.array_equal(record.words, trace.records[0].words)
        assert np.array_equal(record.metadata, trace.records[0].metadata)

    def test_negative_residency_rejected(self):
        with pytest.raises(ValueError):
            WriteRecord(block_index=0, words=np.array([1]), residency=-1.0)

    def test_large_integer_fields_roundtrip_exactly(self, tmp_path):
        """int64 storage: values above 2**53 must survive save/load."""
        big = 2**53 + 1  # not representable in float64
        trace = WriteTrace(word_bits=8)
        trace.append(WriteRecord(block_index=big, start_row=big - 2,
                                 words=np.array([7], dtype=np.uint64)))
        path = tmp_path / "big.npz"
        trace.save(path)
        record = WriteTrace.load(path).records[0]
        assert record.block_index == big
        assert record.start_row == big - 2

    def test_legacy_float_info_layout_still_loads(self, tmp_path):
        """Traces written before the int64 layout keep loading."""
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            word_bits=np.asarray([8]),
            words_0=np.array([1, 2], dtype=np.uint64),
            meta_0=np.empty(0, dtype=np.uint8),
            info_0=np.asarray([5, 2.5, 3], dtype=np.float64),
        )
        record = WriteTrace.load(path).records[0]
        assert record.block_index == 5
        assert record.residency == 2.5
        assert record.start_row == 3

    def test_non_integer_fields_rejected(self):
        with pytest.raises(TypeError):
            WriteRecord(block_index=1.0, words=np.array([1]))
        with pytest.raises(TypeError):
            WriteRecord(block_index=0, start_row=2.5, words=np.array([1]))
        with pytest.raises(ValueError):
            WriteRecord(block_index=0, start_row=-1, words=np.array([1]))


class TestEnergyModel:
    def test_dram_much_more_expensive_than_sram(self):
        sram = sram_access_energy(32 * KB, 32)
        dram = dram_access_energy(32)
        assert dram / sram > 50  # Fig. 1b: two orders of magnitude

    def test_sram_energy_grows_with_capacity(self):
        assert sram_access_energy(512 * KB, 32) > sram_access_energy(32 * KB, 32)

    def test_sram_energy_scales_with_access_width(self):
        assert sram_access_energy(32 * KB, 64) == pytest.approx(
            2 * sram_access_energy(32 * KB, 32))

    def test_anchor_value(self):
        assert sram_access_energy(32 * KB, 32) == pytest.approx(5e-12)

    def test_memory_energy_model(self):
        model = MemoryEnergyModel(capacity_bytes=512 * KB, word_bits=8)
        assert model.write_energy > model.read_energy
        assert model.energy_ratio_vs_dram() > 10
        assert model.inference_write_energy(1000) == pytest.approx(model.write_energy * 1000)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sram_access_energy(0, 32)
        with pytest.raises(ValueError):
            dram_access_energy(0)
