"""Tests for the orchestration subsystem: registry, cache and sweeps."""

import json
import pickle

import numpy as np
import pytest

from repro.core.policies import DnnLifePolicy
from repro.core.simulation import AgingResult, AgingSimulator
from repro.orchestration import (
    REGISTRY,
    ExperimentSpec,
    ParamSpec,
    ResultCache,
    SweepRunner,
    cache_key,
    code_version,
    expand_grid,
    load_all_experiments,
    run_experiment,
)
from repro.orchestration.registry import ExperimentRegistry


# --------------------------------------------------------------------------- #
# Parameter schema
# --------------------------------------------------------------------------- #
class TestParamSpec:
    def test_parse_bool(self):
        spec = ParamSpec("quick", bool, True)
        assert spec.parse("true") is True
        assert spec.parse("0") is False
        with pytest.raises(ValueError, match="boolean"):
            spec.parse("maybe")

    def test_parse_numeric(self):
        assert ParamSpec("seed", int, 0).parse("17") == 17
        assert ParamSpec("bias", float, 0.5).parse("0.7") == pytest.approx(0.7)

    def test_validate_type_mismatch(self):
        with pytest.raises(TypeError, match="expects int"):
            ParamSpec("seed", int, 0).validate("three")

    def test_validate_int_accepted_for_float(self):
        assert ParamSpec("bias", float, 0.5).validate(1) == 1.0

    def test_choices_enforced(self):
        spec = ParamSpec("policy", str, "none", choices=("none", "dnn_life"))
        assert spec.parse("dnn_life") == "dnn_life"
        with pytest.raises(ValueError, match="must be one of"):
            spec.parse("magic")

    def test_cli_flag_default_and_override(self):
        assert ParamSpec("num_points", int, 5).cli_flag == "--num-points"
        assert ParamSpec("data_format", str, "x", flag="--format").cli_flag == "--format"


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_load_all_registers_every_driver(self):
        registry = load_all_experiments()
        names = registry.names()
        for expected in ("fig1", "fig2", "fig6", "fig7", "fig9", "fig11",
                         "table1", "table2", "compare", "energy", "report",
                         "aging", "ablation-bias", "ablation-lifetime"):
            assert expected in names
        assert len(registry) >= 18

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        spec = ExperimentSpec(name="x", runner=len, description="d", artifact="a")
        registry.register(spec)
        assert registry.register(spec) is spec  # identical spec is idempotent
        clone = ExperimentSpec(name="x", runner=len, description="other", artifact="a")
        with pytest.raises(ValueError, match="already registered"):
            registry.register(clone)

    def test_unknown_experiment_names_known_ones(self):
        with pytest.raises(KeyError, match="known experiments"):
            load_all_experiments().get("figure-nine")

    def test_resolve_layers_full_config_under_overrides(self):
        spec = load_all_experiments().get("aging")
        quick = spec.resolve()
        assert quick["quick"] is True and quick["num_inferences"] == 20
        full = spec.resolve(full=True)
        assert full["quick"] is False and full["num_inferences"] == 100
        override = spec.resolve({"num_inferences": "7"}, full=True)
        assert override["num_inferences"] == 7  # string parsed, override wins

    def test_resolve_rejects_unknown_parameter(self):
        spec = load_all_experiments().get("fig2")
        with pytest.raises(KeyError, match="no parameter"):
            spec.resolve({"bogus": 1})


# --------------------------------------------------------------------------- #
# Grid expansion
# --------------------------------------------------------------------------- #
class TestExpandGrid:
    def test_cartesian_product_order(self):
        grid = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert grid == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                        {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]

    def test_empty_grid_is_single_point(self):
        assert expand_grid({}) == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid({"a": []})


# --------------------------------------------------------------------------- #
# Result cache
# --------------------------------------------------------------------------- #
class TestResultCache:
    def test_key_depends_on_name_params_and_code_version(self):
        base = cache_key("fig2", {"num_points": 5})
        assert base == cache_key("fig2", {"num_points": 5})
        assert base != cache_key("fig2", {"num_points": 6})
        assert base != cache_key("fig7", {"num_points": 5})
        assert base != cache_key("fig2", {"num_points": 5}, version="other")

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("demo", {"x": 1})
        assert cache.get(key) is None
        cache.put(key, {"value": [1, 2, 3]}, experiment="demo", params={"x": 1})
        assert key in cache
        assert cache.get(key) == {"value": [1, 2, 3]}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache_key("demo", {})
        cache.put(key, {"ok": True})
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for index in range(3):
            cache.put(cache_key("demo", {"i": index}), index)
        stats = cache.stats()
        assert stats["entries"] == 3 and stats["bytes"] > 0
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0


# --------------------------------------------------------------------------- #
# Cached execution
# --------------------------------------------------------------------------- #
class TestRunExperiment:
    def test_miss_then_hit_with_identical_payload(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = run_experiment("fig2", {"num_points": 5}, cache=cache)
        second = run_experiment("fig2", {"num_points": 5}, cache=cache)
        assert first.from_cache is False
        assert second.from_cache is True
        assert second.cache_key == first.cache_key
        assert json.dumps(second.payload, sort_keys=True) == \
            json.dumps(first.payload, sort_keys=True)

    def test_no_cache_recomputes(self):
        run = run_experiment("fig2", {"num_points": 5}, cache=None)
        assert run.from_cache is False
        assert len(run.payload) == 5

    def test_string_params_are_parsed(self):
        run = run_experiment("fig2", {"num_points": "4"}, cache=None)
        assert len(run.payload) == 4

    def test_cached_aging_parity_with_fresh_run(self, tmp_path):
        """Cache-served results equal freshly-computed ones bit-for-bit."""
        cache = ResultCache(tmp_path / "cache")
        params = {"network": "lenet5", "weight_memory_kb": 16,
                  "num_inferences": 3, "policy": "dnn_life"}
        computed = run_experiment("aging", params, cache=cache)
        cached = run_experiment("aging", params, cache=cache)
        fresh = run_experiment("aging", params, cache=None)
        assert cached.from_cache and not fresh.from_cache
        assert json.dumps(cached.payload, sort_keys=True) == \
            json.dumps(computed.payload, sort_keys=True) == \
            json.dumps(fresh.payload, sort_keys=True)


# --------------------------------------------------------------------------- #
# Sweeps
# --------------------------------------------------------------------------- #
FIG2_GRID = {"num_points": [4, 5], "years": [1.0, 7.0]}


class TestSweepRunner:
    def test_serial_sweep_matches_individual_runs(self, tmp_path):
        runner = SweepRunner(cache=ResultCache(tmp_path / "cache"), max_workers=1)
        report = runner.run("fig2", FIG2_GRID)
        assert report.num_jobs == 4
        assert report.num_computed == 4
        for result in report.results:
            solo = run_experiment("fig2", result.job.params, cache=None)
            assert json.dumps(solo.payload, sort_keys=True) == \
                json.dumps(result.payload, sort_keys=True)

    def test_second_sweep_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = SweepRunner(cache=cache, max_workers=1).run("fig2", FIG2_GRID)
        second = SweepRunner(cache=cache, max_workers=1).run("fig2", FIG2_GRID)
        assert first.num_from_cache == 0
        assert second.num_from_cache == second.num_jobs == 4
        assert [r.payload for r in second.results] == [r.payload for r in first.results]

    def test_deterministic_per_job_seeding(self):
        runner = SweepRunner(max_workers=1)
        grid = {"network": ["lenet5", "custom_mnist"], "policy": ["none", "dnn_life"]}
        jobs_a = runner.build_jobs("aging", grid, base_seed=0)
        jobs_b = runner.build_jobs("aging", grid, base_seed=0)
        seeds = [job.params["seed"] for job in jobs_a]
        assert seeds == [job.params["seed"] for job in jobs_b]  # stable
        # distinct per workload (affinity subset: here the network axis),
        # shared across the policy axis so policies compare on equal weights
        by_network = {}
        for job in jobs_a:
            by_network.setdefault(job.params["network"], set()).add(job.params["seed"])
        assert all(len(values) == 1 for values in by_network.values())
        assert len(set(seeds)) == len(by_network)
        jobs_c = runner.build_jobs("aging", grid, base_seed=1)
        assert seeds != [job.params["seed"] for job in jobs_c]

    def test_pinned_seed_respected(self):
        jobs = SweepRunner().build_jobs("aging", {"seed": [11], "policy": ["none"]})
        assert jobs[0].params["seed"] == 11

    @pytest.mark.slow
    def test_multiprocess_sweep(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        report = SweepRunner(cache=cache, max_workers=2).run("fig2", FIG2_GRID)
        assert report.num_computed == 4
        serial = SweepRunner(max_workers=1).run("fig2", FIG2_GRID)
        assert [r.payload for r in report.results] == [r.payload for r in serial.results]

    @pytest.mark.slow
    def test_failed_job_does_not_abort_sweep(self, tmp_path):
        """One invalid grid point fails alone; sibling jobs still complete."""
        cache = ResultCache(tmp_path / "cache")
        report = SweepRunner(cache=cache, max_workers=1).run(
            "aging", {"network": ["lenet5"], "weight_memory_kb": [16],
                      "num_inferences": [2], "policy": ["none"],
                      "fifo_depth_tiles": [1, 7]})  # 7 tiles: indivisible rows
        assert report.num_jobs == 2
        assert report.num_failed == 1 and report.num_computed == 1
        failed = [r for r in report.results if r.failed][0]
        assert failed.payload is None and failed.error
        ok = [r for r in report.results if not r.failed][0]
        assert ok.payload["results"]
        json.dumps(report.summary())  # failures stay JSON-safe

    def test_affinity_batches_group_shared_streams(self):
        """Jobs sharing the aging experiment's affinity params land in one
        batch; batches split only to saturate the worker pool."""
        runner = SweepRunner()
        jobs = runner.build_jobs("aging", {
            "network": ["lenet5"],
            "policy": ["none", "inversion", "barrel_shifter", "dnn_life"],
            "weight_memory_kb": [16, 32],
            "num_inferences": [2],
            "seed": [0],
        })
        batches = runner._affinity_batches("aging", jobs, max_workers=2)
        assert sorted(job.index for batch in batches for job in batch) \
            == list(range(8))
        spec = load_all_experiments().get("aging")
        for batch in batches:
            keys = {spec.affinity_key(job.params) for job in batch}
            assert len(keys) == 1  # one workload stream per batch

    def test_auto_seeds_shared_within_affinity_group(self):
        """Without a pinned seed, grid points differing only in non-affinity
        axes (policy) must share their derived seed — otherwise their weight
        streams differ and affinity batching could never hit the cache."""
        runner = SweepRunner()
        jobs = runner.build_jobs("aging", {
            "network": ["lenet5", "custom_mnist"],
            "policy": ["none", "inversion", "dnn_life"],
            "num_inferences": [2],
        })
        seeds = {}
        for job in jobs:
            seeds.setdefault(job.params["network"], set()).add(job.params["seed"])
        assert all(len(values) == 1 for values in seeds.values())
        assert seeds["lenet5"] != seeds["custom_mnist"]
        batches = runner._affinity_batches("aging", jobs, max_workers=2)
        assert len(batches) == 2
        for batch in batches:
            assert len({job.params["network"] for job in batch}) == 1

    def test_affinity_batches_split_to_saturate_pool(self):
        runner = SweepRunner()
        jobs = runner.build_jobs("aging", {
            "network": ["lenet5"],
            "policy": ["none", "inversion", "barrel_shifter", "dnn_life"],
            "num_inferences": [2],
            "seed": [0],
        })
        # a single affinity group must still fan out across the pool
        batches = runner._affinity_batches("aging", jobs, max_workers=4)
        assert len(batches) == 4
        assert sorted(job.index for batch in batches for job in batch) \
            == list(range(4))

    def test_experiment_without_affinity_gets_one_job_per_batch(self):
        runner = SweepRunner()
        jobs = runner.build_jobs("fig2", FIG2_GRID)
        batches = runner._affinity_batches("fig2", jobs, max_workers=2)
        assert [len(batch) for batch in batches] == [1] * len(jobs)

    @pytest.mark.slow
    def test_multiprocess_affinity_sweep_matches_serial(self, tmp_path):
        grid = {"network": ["lenet5"], "weight_memory_kb": [16],
                "num_inferences": [2], "seed": [0],
                "policy": ["none", "inversion", "barrel_shifter"]}
        parallel = SweepRunner(max_workers=2).run("aging", grid)
        serial = SweepRunner(max_workers=1).run("aging", grid)
        assert parallel.num_failed == 0
        assert [r.payload for r in parallel.results] \
            == [r.payload for r in serial.results]

    def test_full_experiments_env_changes_params_and_cache_key(self, monkeypatch):
        from repro.orchestration.runner import resolve_params

        spec = load_all_experiments().get("aging")
        monkeypatch.delenv("REPRO_FULL_EXPERIMENTS", raising=False)
        quick = resolve_params(spec, {"num_inferences": 2})
        assert quick["quick"] is True
        monkeypatch.setenv("REPRO_FULL_EXPERIMENTS", "1")
        forced = resolve_params(spec, {"num_inferences": 2})
        assert forced["quick"] is False  # env forces paper scale...
        assert cache_key("aging", quick) != cache_key("aging", forced)  # ...and a new key

    def test_summary_is_json_safe(self, tmp_path):
        report = SweepRunner(max_workers=1).run("fig2", {"num_points": [4]})
        summary = report.summary()
        json.dumps(summary)  # must not raise
        assert summary["num_jobs"] == 1 and summary["jobs"][0]["payload"]


# --------------------------------------------------------------------------- #
# Executor backends and stream-store accounting
# --------------------------------------------------------------------------- #
class TestSweepBackends:
    #: One network, four policies: with two workers this makes two affinity
    #: batches that share a single workload stream.
    GRID = {"network": ["custom_mnist"], "weight_memory_kb": [8],
            "num_inferences": [2], "seed": [0],
            "policy": ["none", "inversion", "barrel_shifter", "dnn_life"]}

    def test_make_executor_unknown_backend(self):
        from repro.orchestration import make_executor

        with pytest.raises(ValueError, match="unknown sweep backend"):
            make_executor("threads")

    def test_make_executor_dask_requires_dependency(self):
        from repro.orchestration import make_executor

        try:
            import dask.distributed  # noqa: F401
            pytest.skip("dask.distributed is installed here")
        except ImportError:
            pass
        with pytest.raises(ValueError, match="dask.distributed"):
            make_executor("dask")

    def test_named_backends_construct(self):
        from repro.orchestration import (
            ProcessPoolSweepExecutor,
            SerialSweepExecutor,
            make_executor,
        )

        assert isinstance(make_executor("serial"), SerialSweepExecutor)
        assert isinstance(make_executor("process", max_workers=2),
                          ProcessPoolSweepExecutor)

    def test_single_worker_shortcut_reports_serial(self, tmp_path):
        report = SweepRunner(max_workers=1).run("fig2", FIG2_GRID)
        assert report.backend == "serial"
        assert report.summary()["backend"] == "serial"

    def test_explicit_serial_backend(self):
        report = SweepRunner(max_workers=2, backend="serial").run(
            "fig2", {"num_points": [4, 5]})
        assert report.backend == "serial"
        assert report.num_computed == 2

    def test_custom_executor_instance(self):
        from repro.orchestration import SerialSweepExecutor

        report = SweepRunner(backend=SerialSweepExecutor()).run(
            "fig2", {"num_points": [4]})
        assert report.backend == "serial" and report.num_computed == 1

    def test_store_disabled_reports_no_accounting(self, monkeypatch):
        monkeypatch.setenv("DNN_LIFE_STREAM_STORE", "0")
        report = SweepRunner(max_workers=1).run("fig2", {"num_points": [4]})
        assert report.stream_store is None

    def test_one_cold_build_across_batches_with_lru_disabled(
            self, monkeypatch, tmp_path):
        """Regression: with ``DNN_LIFE_STREAM_CACHE=0`` every affinity batch
        used to rebuild the stream; the store must absorb all but the first."""
        from repro.experiments.aging_runner import clear_stream_cache

        monkeypatch.setenv("DNN_LIFE_STREAM_CACHE", "0")
        monkeypatch.setenv("DNN_LIFE_STREAM_STORE", str(tmp_path / "streams"))
        clear_stream_cache()
        runner = SweepRunner(max_workers=2, backend="serial")
        assert len(runner._affinity_batches(
            "aging", runner.build_jobs("aging", self.GRID), max_workers=2)) == 2
        report = runner.run("aging", self.GRID)
        assert report.num_failed == 0 and report.num_jobs == 4
        assert report.stream_store is not None
        assert report.stream_store["puts"] == 1  # exactly one cold build
        assert report.stream_store["hits"] >= 1  # second batch loads it

    @pytest.mark.slow
    def test_process_and_serial_backends_identical_payloads(
            self, monkeypatch, tmp_path):
        from repro.experiments.aging_runner import clear_stream_cache

        monkeypatch.setenv("DNN_LIFE_STREAM_CACHE", "0")
        monkeypatch.setenv("DNN_LIFE_STREAM_STORE", str(tmp_path / "streams"))
        clear_stream_cache()
        serial = SweepRunner(max_workers=2, backend="serial").run(
            "aging", self.GRID)
        assert serial.stream_store["puts"] == 1
        clear_stream_cache()
        process = SweepRunner(max_workers=2, backend="process").run(
            "aging", self.GRID)
        assert process.backend == "process"
        assert process.num_failed == 0
        assert [r.payload for r in process.results] \
            == [r.payload for r in serial.results]
        # the workers found the serial run's entry: zero further cold builds
        assert process.stream_store["puts"] == 0
        assert process.stream_store["hits"] >= 2


# --------------------------------------------------------------------------- #
# Result transport (pickling / payload round-trip)
# --------------------------------------------------------------------------- #
class TestAgingResultTransport:
    @pytest.fixture
    def result(self, tiny_scheduler):
        policy = DnnLifePolicy(tiny_scheduler.geometry.word_bits, seed=5)
        return AgingSimulator(tiny_scheduler, policy, num_inferences=3, seed=5).run()

    def test_pickle_roundtrip(self, result):
        clone = pickle.loads(pickle.dumps(result))
        np.testing.assert_array_equal(clone.duty_cycles, result.duty_cycles)
        assert clone.summary() == result.summary()

    def test_payload_roundtrip(self, result):
        clone = AgingResult.from_payload(result.to_payload())
        np.testing.assert_array_equal(clone.duty_cycles, result.duty_cycles)
        assert clone.policy_name == result.policy_name
        assert clone.summary() == result.summary()
        json.dumps(clone.to_payload())  # payload must be JSON-safe

    def test_payload_roundtrip_reaction_diffusion_model(self, tiny_scheduler):
        from repro.aging.nbti import ReactionDiffusionSnmModel
        from repro.core.policies import NoMitigationPolicy

        simulator = AgingSimulator(tiny_scheduler, NoMitigationPolicy(),
                                   num_inferences=2,
                                   snm_model=ReactionDiffusionSnmModel())
        result = simulator.run()
        clone = AgingResult.from_payload(result.to_payload())
        assert type(clone.snm_model).__name__ == "ReactionDiffusionSnmModel"
        assert clone.summary() == result.summary()


# --------------------------------------------------------------------------- #
# CLI verbs
# --------------------------------------------------------------------------- #
class TestCliVerbs:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "aging" in out

    def test_run_with_set_and_json(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "fig2.json"
        assert main(["--json", str(output), "run", "fig2", "--set", "num_points=5"]) == 0
        payload = json.loads(output.read_text())
        assert len(payload) == 5
        assert "computed" in capsys.readouterr().out

    def test_run_served_from_cache_on_second_invocation(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["--cache-dir", str(tmp_path / "cache"), "run", "fig2"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "| cache in" in capsys.readouterr().out

    def test_sweep_verb(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "sweep.json"
        argv = ["--cache-dir", str(tmp_path / "cache"), "--json", str(output),
                "sweep", "fig2", "--grid", "num_points=4,5", "--workers", "1"]
        assert main(argv) == 0
        assert "2 jobs" in capsys.readouterr().out
        summary = json.loads(output.read_text())
        assert summary["num_jobs"] == 2 and summary["num_computed"] == 2

    def test_cache_verb(self, tmp_path, capsys):
        from repro.cli import main

        cache_args = ["--cache-dir", str(tmp_path / "cache")]
        assert main(cache_args + ["run", "fig2"]) == 0
        capsys.readouterr()
        assert main(cache_args + ["cache"]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main(cache_args + ["cache", "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_experiment_subcommand_suppresses_unset_defaults(self):
        """`--full` must let the spec's full_config through (only explicit
        flags land in the namespace and override it)."""
        from repro.cli import build_parser

        args = build_parser().parse_args(["aging", "--full"])
        assert args.quick is False
        assert not hasattr(args, "num_inferences")  # full_config's 100 applies
        args = build_parser().parse_args(["aging", "--full", "--inferences", "7"])
        assert args.num_inferences == 7  # explicit flag still wins

    def test_fig2_render_honours_parameters(self, capsys):
        from repro.cli import main

        assert main(["--no-cache", "run", "fig2", "--set", "num_points=5",
                     "--set", "years=14"]) == 0
        out = capsys.readouterr().out
        assert "after 14 years" in out
        assert out.count("\n|") < 10  # 5 data rows, not the default 21

    def test_usage_errors_exit_2_without_traceback(self, capsys):
        from repro.cli import main

        assert main(["run", "figure-nine"]) == 2
        captured = capsys.readouterr()
        assert "unknown experiment" in captured.err
        assert "Traceback" not in captured.err
        assert main(["run", "aging", "--set", "policy=magic"]) == 2
        assert "must be one of" in capsys.readouterr().err

    def test_duplicate_grid_axis_rejected(self, capsys):
        from repro.cli import main

        assert main(["sweep", "aging", "--grid", "policy=none",
                     "--grid", "policy=dnn_life"]) == 2
        assert "specified twice" in capsys.readouterr().err

    def test_sweep_with_failed_job_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["--cache-dir", str(tmp_path / "cache"), "sweep", "aging",
                     "--grid", "network=lenet5", "--grid", "weight_memory_kb=16",
                     "--grid", "num_inferences=2", "--grid", "policy=none",
                     "--grid", "fifo_depth_tiles=1,7", "--workers", "1"])
        assert code == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "job 1 failed" in captured.err

    def test_no_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["--cache-dir", str(tmp_path / "cache"), "--no-cache", "run", "fig2"]
        assert main(argv) == 0
        assert main(argv) == 0
        assert "| computed in" in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()
