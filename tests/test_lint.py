"""Tests for the determinism/aliasing static-analysis suite (`dnn-life lint`).

Every rule is exercised with a paired (violating, clean) fixture, plus the
engine-level behaviors the CI lane depends on: per-line suppression, the
stable JSON schema, exit codes of the CLI verb, and the self-cleanliness of
the shipped source tree.
"""

import json

import pytest

from repro.cli import main
from repro.devtools.lint import (
    ALL_RULES,
    JSON_SCHEMA_VERSION,
    LintEngine,
    RULES_BY_CODE,
    run_lint,
    suppressed_codes,
)

EXPECTED_CODES = ("DL001", "DL002", "DL003", "DL004", "DL005", "DL006")


def codes_of(source, rel=None):
    """Lint one source string and return the finding codes, in order."""
    findings = LintEngine().lint_source(source, path="<fixture>",
                                        rel=rel or "<fixture>")
    return [finding.code for finding in findings]


class TestRuleCatalog:
    def test_all_rules_registered_with_stable_codes(self):
        assert tuple(rule.code for rule in ALL_RULES) == EXPECTED_CODES
        for code in EXPECTED_CODES:
            rule = RULES_BY_CODE[code]
            assert rule.name
            assert rule.summary

    def test_findings_carry_location_and_render(self):
        findings = LintEngine().lint_source(
            "import numpy as np\nx = np.random.rand(3)\n", path="mod.py")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.code == "DL001"
        assert finding.line == 2
        assert finding.render().startswith("mod.py:2:")
        payload = finding.to_payload()
        assert set(payload) == {"code", "path", "line", "col", "message"}


class TestNoGlobalRng:
    def test_flags_numpy_global_draw(self):
        assert codes_of("import numpy as np\nx = np.random.rand(3)\n") == ["DL001"]

    def test_flags_global_seed_call(self):
        assert codes_of("import numpy as np\nnp.random.seed(0)\n") == ["DL001"]

    def test_flags_stdlib_global_draw(self):
        assert codes_of("import random\nx = random.random()\n") == ["DL001"]

    def test_allows_seeded_generator_construction(self):
        assert codes_of("import numpy as np\n"
                        "rng = np.random.default_rng(0)\n"
                        "x = rng.random(3)\n") == []
        assert codes_of("import random\nr = random.Random(0)\n") == []

    def test_rng_funnel_module_is_exempt(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes_of(source, rel="repro/utils/rng.py") == []
        assert codes_of(source, rel="repro/core/other.py") == ["DL001"]


class TestNoWallclockSeed:
    def test_flags_time_time(self):
        assert codes_of("import time\nseed = int(time.time())\n") == ["DL002"]

    def test_flags_datetime_now_through_from_import(self):
        assert codes_of("from datetime import datetime\n"
                        "stamp = datetime.now()\n") == ["DL002"]

    def test_allows_perf_counter_timing(self):
        assert codes_of("import time\nstart = time.perf_counter()\n") == []


class TestNarrowDtypeReduction:
    BAD_METHOD = ("from repro.quantization.bitops import unpack_bits\n"
                  "def f(words):\n"
                  "    bits = unpack_bits(words, 8)\n"
                  "    return bits.sum()\n")
    BAD_NPSUM = ("import numpy as np\n"
                 "from repro.quantization.bitops import unpack_bits\n"
                 "def f(words):\n"
                 "    bits = unpack_bits(words, 8)\n"
                 "    return np.sum(bits)\n")
    GOOD = ("import numpy as np\n"
            "from repro.quantization.bitops import unpack_bits\n"
            "def f(words):\n"
            "    bits = unpack_bits(words, 8)\n"
            "    return bits.sum(dtype=np.int64)\n")

    def test_flags_dtypeless_method_sum(self):
        assert codes_of(self.BAD_METHOD) == ["DL003"]

    def test_flags_dtypeless_np_sum(self):
        assert codes_of(self.BAD_NPSUM) == ["DL003"]

    def test_explicit_dtype_is_clean(self):
        assert codes_of(self.GOOD) == []

    def test_wide_arrays_are_not_flagged(self):
        assert codes_of("import numpy as np\n"
                        "def f():\n"
                        "    x = np.zeros(4)\n"
                        "    return x.sum()\n") == []


class TestCachedBufferMutation:
    def test_flags_subscript_augassign_on_packed_bits(self):
        assert codes_of(
            "from repro.accelerator.scheduler import packed_bit_tensor\n"
            "def f(stream):\n"
            "    packed = packed_bit_tensor(stream)\n"
            "    packed.bits[0] += 1\n") == ["DL004"]

    def test_flags_augassign_on_cached_reduction(self):
        assert codes_of("def f(packed):\n"
                        "    ones = packed.rows_ones()\n"
                        "    ones += 1\n") == ["DL004"]

    def test_flags_out_kwarg_targeting_cached(self):
        assert codes_of("import numpy as np\n"
                        "def f(packed):\n"
                        "    np.add(packed.rows_ones(), 1, "
                        "out=packed.rows_ones())\n") == ["DL004"]

    def test_flags_reenabling_writes(self):
        assert codes_of(
            "from repro.accelerator.scheduler import packed_bit_tensor\n"
            "def f(stream):\n"
            "    packed = packed_bit_tensor(stream)\n"
            "    packed.bits.setflags(write=True)\n") == ["DL004"]

    def test_freezing_and_copies_are_clean(self):
        assert codes_of(
            "from repro.accelerator.scheduler import packed_bit_tensor\n"
            "def f(stream):\n"
            "    packed = packed_bit_tensor(stream)\n"
            "    packed.bits.setflags(write=False)\n") == []
        assert codes_of("def f(packed):\n"
                        "    ones = packed.rows_ones().copy()\n"
                        "    ones += 1\n") == []


class TestUnorderedPayloadIteration:
    def test_flags_set_iteration_in_to_payload(self):
        assert codes_of("class T:\n"
                        "    def to_payload(self):\n"
                        "        names = {'b', 'a'}\n"
                        "        return [n for n in names]\n") == ["DL005"]

    def test_flags_nonliteral_dict_keys(self):
        assert codes_of("class T:\n"
                        "    def to_payload(self, mapping):\n"
                        "        return [k for k in mapping.keys()]\n") == ["DL005"]

    def test_sorted_wrapper_is_clean(self):
        assert codes_of("class T:\n"
                        "    def to_payload(self):\n"
                        "        names = {'b', 'a'}\n"
                        "        return [n for n in sorted(names)]\n") == []

    def test_literal_dict_keys_are_clean(self):
        assert codes_of("class T:\n"
                        "    def to_payload(self):\n"
                        "        d = {'a': 1, 'b': 2}\n"
                        "        return [k for k in d.keys()]\n") == []

    def test_only_payload_methods_are_checked(self):
        assert codes_of("class T:\n"
                        "    def helper(self):\n"
                        "        names = {'b', 'a'}\n"
                        "        return [n for n in names]\n") == []


class TestFloatEquality:
    def test_flags_float_equality(self):
        assert codes_of("def f(x: float):\n    return x == 1.0\n") == ["DL006"]

    def test_integer_equality_is_clean(self):
        assert codes_of("def f(count: int):\n    return count == 1\n") == []

    def test_allowlisted_bit_exactness_module_is_exempt(self):
        source = "def f(x: float):\n    return x == 1.0\n"
        assert codes_of(source, rel="repro/core/simulation.py") == []
        assert codes_of(source, rel="repro/core/encoder.py") == ["DL006"]


class TestSuppression:
    def test_parse_suppression_comment(self):
        assert suppressed_codes("x = 1  # dnn-lint: disable=DL002") == {"DL002"}
        assert suppressed_codes("x = 1  # dnn-lint: disable=DL002, DL006") == {
            "DL002", "DL006"}
        assert suppressed_codes("x = 1  # dnn-lint: disable=all") == {"all"}
        assert suppressed_codes("x = 1  # a plain comment") is None

    def test_suppressed_finding_is_dropped_and_counted(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import time\n"
            "stamp = time.time()  # dnn-lint: disable=DL002\n")
        report = run_lint(paths=[str(tmp_path)], root=str(tmp_path))
        assert report.clean
        assert report.suppressed == 1

    def test_suppression_of_other_code_does_not_mask(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import time\n"
            "stamp = time.time()  # dnn-lint: disable=DL006\n")
        report = run_lint(paths=[str(tmp_path)], root=str(tmp_path))
        assert [f.code for f in report.findings] == ["DL002"]
        assert report.suppressed == 0

    def test_disable_all_suppresses_every_rule(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\n"
            "x = np.random.rand(3)  # dnn-lint: disable=all\n")
        report = run_lint(paths=[str(tmp_path)], root=str(tmp_path))
        assert report.clean
        assert report.suppressed == 1


class TestEngineReports:
    def test_json_payload_schema(self, tmp_path):
        (tmp_path / "mod.py").write_text("import time\nstamp = time.time()\n")
        report = run_lint(paths=[str(tmp_path)], root=str(tmp_path))
        payload = report.to_payload()
        assert set(payload) == {"version", "root", "files_checked", "clean",
                                "suppressed", "counts", "findings", "errors"}
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["clean"] is False
        assert payload["counts"] == {"DL002": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {"code", "path", "line", "col", "message"}
        assert finding["path"] == "mod.py"

    def test_syntax_errors_are_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        report = run_lint(paths=[str(tmp_path)], root=str(tmp_path))
        assert not report.clean
        assert report.errors and "syntax error" in report.errors[0]

    def test_findings_sorted_by_location(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nstamp = time.time()\n")
        (tmp_path / "a.py").write_text(
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "x = np.random.rand(3)\n")
        report = run_lint(paths=[str(tmp_path)], root=str(tmp_path))
        locations = [(f.path, f.line) for f in report.findings]
        assert locations == sorted(locations)

    def test_text_report_footer(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        report = run_lint(paths=[str(tmp_path)], root=str(tmp_path))
        assert "dnn-life lint: clean across 1 file(s)" in report.render_text()


class TestShippedTreeIsClean:
    def test_lint_runs_clean_on_shipped_sources(self):
        report = run_lint()
        assert report.files_checked > 50
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.clean, f"shipped sources must lint clean:\n{rendered}"


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_two(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("import time\nstamp = time.time()\n")
        assert main(["lint", str(tmp_path), "--root", str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "DL002" in out
        assert "mod.py:2:" in out

    def test_json_format_round_trips(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("import time\nstamp = time.time()\n")
        assert main(["lint", str(tmp_path), "--root", str(tmp_path),
                     "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["counts"] == {"DL002": 1}

    def test_list_prints_rule_catalog(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for code in EXPECTED_CODES:
            assert code in out

    def test_shipped_sources_through_cli(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out
