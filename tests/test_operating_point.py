"""Tests for the DVFS operating-point layer (``repro.scenario.operating_point``).

Covers the :class:`OperatingPoint` container and its ``@V:F`` spec suffix,
the voltage-acceleration term of :class:`ArrheniusTimeScaling`, the
:class:`RetentionModel` idle-failure physics, hypothesis round-trip property
tests of the extended phase-spec mini-language (``parse(format(x)) == x``),
parse-error message snapshots, and the ``--grid`` alternate-separator
escaping convention.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging.snm import default_snm_model
from repro.aging.stress import (
    DEFAULT_REFERENCE_FREQUENCY_GHZ,
    DEFAULT_REFERENCE_TEMPERATURE_C,
    DEFAULT_REFERENCE_VOLTAGE_V,
    ArrheniusTimeScaling,
    PhaseStress,
    aggregate_stress,
)
from repro.orchestration.sweep import split_grid_values
from repro.scenario import (
    LifetimeScenario,
    OperatingPoint,
    Phase,
    RetentionModel,
    parse_scenario_spec,
    reference_operating_point,
)
from repro.scenario.operating_point import (
    format_point_suffix,
    parse_point_suffix,
)


# --------------------------------------------------------------------------- #
# OperatingPoint container
# --------------------------------------------------------------------------- #
class TestOperatingPoint:
    def test_reference_point_is_reference(self):
        point = reference_operating_point()
        assert point.is_reference
        assert point.relative_frequency == 1.0
        assert point.voltage_v == DEFAULT_REFERENCE_VOLTAGE_V
        assert point.frequency_ghz == DEFAULT_REFERENCE_FREQUENCY_GHZ
        assert point.temperature_c == DEFAULT_REFERENCE_TEMPERATURE_C

    def test_relative_frequency_is_exactly_one_at_reference(self):
        # exact 1.0, not merely close: the wall-clock mapping divides by it
        assert OperatingPoint(frequency_ghz=1.0).relative_frequency == 1.0
        assert OperatingPoint(frequency_ghz=0.5).relative_frequency == 0.5

    @pytest.mark.parametrize("kwargs", [
        {"voltage_v": 0.0}, {"voltage_v": -1.0}, {"voltage_v": float("nan")},
        {"frequency_ghz": 0.0}, {"frequency_ghz": float("inf")},
        {"temperature_c": float("nan")},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OperatingPoint(**kwargs)

    def test_describe_round_trip(self):
        point = OperatingPoint(voltage_v=0.72, frequency_ghz=0.5,
                               temperature_c=45.0)
        assert OperatingPoint.from_description(point.describe()) == point

    def test_phase_resolves_omitted_point_to_reference(self):
        phase = Phase.active("lenet5", "int8", "none", 5)
        assert not phase.has_explicit_point
        assert phase.operating_point == OperatingPoint(
            temperature_c=phase.temperature_c)

    def test_naming_either_value_pins_both(self):
        phase = Phase.active("lenet5", "int8", "none", 5, voltage_v=0.8)
        assert phase.has_explicit_point
        assert phase.voltage_v == 0.8
        assert phase.frequency_ghz == DEFAULT_REFERENCE_FREQUENCY_GHZ


# --------------------------------------------------------------------------- #
# The ``@V:F`` suffix
# --------------------------------------------------------------------------- #
class TestPointSuffix:
    @pytest.mark.parametrize("text,expected", [
        ("0.72V:0.5GHz", (0.72, 0.5)),
        ("0.72:0.5", (0.72, 0.5)),
        ("0.72v:500MHz", (0.72, 0.5)),
        ("0.9V:1GHz", (0.9, 1.0)),
        ("1:2ghz", (1.0, 2.0)),
    ])
    def test_accepted_spellings(self, text, expected):
        assert parse_point_suffix(text, "token") == expected

    def test_format_is_parseable(self):
        suffix = format_point_suffix(0.72, 0.5)
        assert suffix == "@0.72V:0.5GHz"
        assert parse_point_suffix(suffix[1:], "token") == (0.72, 0.5)

    @pytest.mark.parametrize("text", ["0.72", "0.72V", ":0.5", "0.72:",
                                      "a:b", "0.72:fast", "-0.7:1", "0.7:-1"])
    def test_rejected_spellings(self, text):
        with pytest.raises(ValueError) as excinfo:
            parse_point_suffix(text, "token")
        assert "\n" not in str(excinfo.value)


# --------------------------------------------------------------------------- #
# Voltage acceleration in the stress aggregation
# --------------------------------------------------------------------------- #
class TestVoltageScaling:
    def test_reference_voltage_factor_is_exactly_one(self):
        scaling = ArrheniusTimeScaling()
        assert scaling.voltage_factor(scaling.reference_voltage_v) == 1.0
        assert scaling.time_factor(85.0, scaling.reference_voltage_v) == 1.0

    def test_none_voltage_matches_legacy_thermal_factor_bitwise(self):
        scaling = ArrheniusTimeScaling()
        for temperature in (25.0, 45.0, 85.0, 105.0):
            assert (scaling.time_factor(temperature)
                    == scaling.time_factor(temperature,
                                           scaling.reference_voltage_v))

    def test_overdrive_accelerates_undervolt_decelerates(self):
        scaling = ArrheniusTimeScaling()
        assert scaling.voltage_factor(1.0) > 1.0
        assert scaling.voltage_factor(0.72) < 1.0

    def test_voltage_and_temperature_compose_multiplicatively(self):
        scaling = ArrheniusTimeScaling()
        assert scaling.time_factor(45.0, 0.72) == pytest.approx(
            scaling.time_factor(45.0) * scaling.voltage_factor(0.72))

    def test_invalid_voltage_rejected(self):
        scaling = ArrheniusTimeScaling()
        with pytest.raises(ValueError):
            scaling.voltage_factor(0.0)
        with pytest.raises(ValueError):
            scaling.voltage_factor(float("nan"))

    def test_describe_round_trips_through_constructor(self):
        scaling = ArrheniusTimeScaling(voltage_acceleration_per_v=4.0,
                                       reference_voltage_v=0.8)
        assert ArrheniusTimeScaling(**scaling.describe()) == scaling

    def test_legacy_payload_without_voltage_keys_still_loads(self):
        legacy = {"activation_energy_ev": 0.1, "time_exponent": 1.0 / 6.0,
                  "reference_temperature_c": 85.0}
        scaling = ArrheniusTimeScaling(**legacy)
        assert scaling.reference_voltage_v == DEFAULT_REFERENCE_VOLTAGE_V

    def test_aggregate_stress_weights_voltage(self):
        duty = np.full(8, 0.7)
        low = [PhaseStress(duty, years=7.0, voltage_v=0.72)]
        ref = [PhaseStress(duty, years=7.0)]
        high = [PhaseStress(duty, years=7.0, voltage_v=1.0)]
        _, low_years = aggregate_stress(low)
        _, ref_years = aggregate_stress(ref)
        _, high_years = aggregate_stress(high)
        assert low_years < ref_years < high_years
        assert ref_years == 7.0  # bit-exact at the reference corner

    def test_phase_stress_rejects_bad_voltage(self):
        with pytest.raises(ValueError, match="voltage_v"):
            PhaseStress(np.zeros(4), years=1.0, voltage_v=-0.9)


# --------------------------------------------------------------------------- #
# Retention model
# --------------------------------------------------------------------------- #
class TestRetentionModel:
    MODEL = RetentionModel()
    SNM = default_snm_model()

    def probability(self, held=1.0, duty=0.9, voltage=0.72, years=5.0,
                    temperature=45.0, idle=1.0):
        return self.MODEL.failure_probability(
            np.asarray([held]), np.asarray([duty]), self.SNM, years,
            voltage, temperature, idle)[0]

    def test_lower_voltage_raises_failure_probability(self):
        probabilities = [self.probability(voltage=v)
                         for v in (0.9, 0.8, 0.72, 0.65)]
        assert all(a < b for a, b in zip(probabilities, probabilities[1:]))

    def test_nominal_supply_is_negligible(self):
        assert self.probability(voltage=DEFAULT_REFERENCE_VOLTAGE_V) < 1e-3

    def test_held_value_selects_the_worn_side(self):
        # A cell that spent its life at duty 0.95 is much riskier holding a
        # '1' (its worn side) than a '0' (the fresh side).
        worn = self.probability(held=1.0, duty=0.95)
        fresh = self.probability(held=0.0, duty=0.95)
        assert worn > 10 * fresh

    def test_expectation_interpolates_between_sides(self):
        worn = self.probability(held=1.0, duty=0.95)
        fresh = self.probability(held=0.0, duty=0.95)
        mixed = self.probability(held=0.5, duty=0.95)
        assert mixed == pytest.approx(0.5 * worn + 0.5 * fresh)

    def test_longer_idle_and_more_aging_raise_probability(self):
        assert self.probability(idle=2.0) > self.probability(idle=1.0)
        assert self.probability(years=7.0) > self.probability(years=0.5)

    def test_hotter_idle_raises_probability(self):
        assert (self.probability(temperature=85.0)
                > self.probability(temperature=25.0))

    def test_nan_held_cells_propagate(self):
        result = self.MODEL.failure_probability(
            np.asarray([np.nan, 1.0]), np.asarray([0.5, 0.5]), self.SNM,
            5.0, 0.72, 45.0, 1.0)
        assert np.isnan(result[0]) and np.isfinite(result[1])

    def test_probability_is_clipped_to_unit_interval(self):
        value = self.probability(voltage=0.51, duty=1.0, years=7.0, idle=10.0)
        assert value == 1.0

    def test_describe_is_json_safe(self):
        import json

        json.dumps(self.MODEL.describe())


# --------------------------------------------------------------------------- #
# Hypothesis round-trips of the spec mini-language
# --------------------------------------------------------------------------- #
def _g_float(minimum, maximum):
    """Floats that survive the ``:g`` token formatting round trip exactly."""
    return st.floats(min_value=minimum, max_value=maximum,
                     allow_nan=False, allow_infinity=False).map(
                         lambda value: float(f"{value:g}"))


_NETWORKS = st.sampled_from(["custom_mnist", "lenet5", "alexnet", "vgg16"])
_FORMATS = st.sampled_from(["int8", "int8_symmetric", "fp32", "float32"])
_POLICIES = st.sampled_from(["none", "inversion", "inversion_per_location",
                             "barrel_shifter", "dnn_life"])
_TEMPERATURES = _g_float(-100.0, 300.0)
_POINTS = st.one_of(
    st.none(),
    st.tuples(_g_float(0.3, 1.4), _g_float(0.05, 4.0)))


@st.composite
def phases(draw, formats=_FORMATS):
    duration = draw(st.integers(min_value=1, max_value=10_000))
    temperature = draw(_TEMPERATURES)
    point = draw(_POINTS)
    voltage, frequency = point if point is not None else (None, None)
    if draw(st.booleans()):
        return Phase.idle(duration, temperature, voltage_v=voltage,
                          frequency_ghz=frequency)
    return Phase.active(draw(_NETWORKS), draw(formats), draw(_POLICIES),
                        duration, temperature, voltage_v=voltage,
                        frequency_ghz=frequency)


class TestSpecRoundTripProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(phases(), min_size=1, max_size=5))
    def test_parse_format_round_trip(self, phase_list):
        spec = ",".join(phase.to_token() for phase in phase_list)
        assert parse_scenario_spec(spec) == tuple(phase_list)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(phases(formats=st.just("int8")), min_size=1, max_size=4))
    def test_describe_round_trip(self, phase_list):
        # one word width per scenario (the geometry is scenario-wide), and a
        # scenario cannot open idle
        if phase_list[0].is_idle:
            phase_list[0] = Phase.active("lenet5", "int8", "none",
                                         phase_list[0].duration)
        scenario = LifetimeScenario(tuple(phase_list))
        rebuilt = LifetimeScenario.from_description(scenario.describe())
        assert rebuilt.phases == scenario.phases

    @settings(max_examples=100, deadline=None)
    @given(phases())
    def test_token_parses_alone(self, phase):
        (parsed,) = parse_scenario_spec(phase.to_token())
        assert parsed == phase

    @settings(max_examples=100, deadline=None)
    @given(phases())
    def test_reference_point_phases_format_without_suffix(self, phase):
        token = phase.to_token()
        assert ("V:" in token) == phase.has_explicit_point


class TestGridEscapingProperties:
    _PLAIN = st.text(
        alphabet=st.characters(whitelist_categories=("L", "N"),
                               whitelist_characters=":@._-"),
        min_size=1, max_size=20)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_PLAIN, min_size=1, max_size=6))
    def test_comma_join_round_trip(self, values):
        assert split_grid_values(",".join(values)) == values

    @settings(max_examples=100, deadline=None)
    @given(st.lists(
        st.text(alphabet=st.characters(whitelist_categories=("L", "N"),
                                       whitelist_characters=":@,._-"),
                min_size=1, max_size=24).filter(lambda s: s[0] not in ";|/"),
        min_size=1, max_size=4))
    def test_alternate_separator_round_trip(self, values):
        # comma-bearing values survive when the axis declares ';'
        assert split_grid_values(";" + ";".join(values)) == values

    def test_declared_separator_with_no_values_is_empty(self):
        assert split_grid_values(";") == []
        assert split_grid_values("|  |") == []

    def test_multi_phase_spec_rides_an_axis(self):
        axis = (";custom_mnist:int8:none:3,idle:2"
                ";custom_mnist:int8:inversion:3@45C@0.72V:0.5GHz")
        values = split_grid_values(axis)
        assert len(values) == 2
        for value in values:
            parse_scenario_spec(value)  # every axis value is a valid spec


# --------------------------------------------------------------------------- #
# Parse-error message snapshots
# --------------------------------------------------------------------------- #
class TestParseErrorSnapshots:
    SNAPSHOTS = {
        "lenet5:int8:none:5@":
            "phase 'lenet5:int8:none:5@': '@' must be followed by a "
            "temperature (e.g. '@85C') or an operating point "
            "(e.g. '@0.72V:0.5GHz')",
        "lenet5:int8:none:5@85C@45C":
            "phase 'lenet5:int8:none:5@85C@45C': multiple temperature "
            "suffixes (at most one '@TEMP' is allowed)",
        "lenet5:int8:none:5@0.7V:1GHz@0.8V:1GHz":
            "phase 'lenet5:int8:none:5@0.7V:1GHz@0.8V:1GHz': multiple "
            "operating-point suffixes (at most one '@V:F' is allowed)",
        "lenet5:int8:none:5@0.7V:":
            "phase 'lenet5:int8:none:5@0.7V:': invalid operating point "
            "'0.7V:' (expected 'V:F', e.g. '0.72V:0.5GHz')",
        "lenet5:int8:none:5@volts:1GHz":
            "phase 'lenet5:int8:none:5@volts:1GHz': invalid voltage 'volts' "
            "(expected volts, e.g. '0.72V')",
        "lenet5:int8:none:5@0.7V:fast":
            "phase 'lenet5:int8:none:5@0.7V:fast': invalid frequency 'fast' "
            "(expected GHz, e.g. '0.5GHz' or '500MHz')",
        "lenet5:int8:none:5@cold":
            "phase 'lenet5:int8:none:5@cold': invalid temperature 'cold' "
            "(expected degrees Celsius, e.g. '85C')",
        "idle:5:5":
            "phase 'idle:5:5': expected 'idle:DURATION[@TEMP][@V:F]'",
        "lenet5:int8:none":
            "phase 'lenet5:int8:none': expected "
            "'NETWORK:FORMAT:POLICY:DURATION[@TEMP][@V:F]' or "
            "'idle:DURATION[@TEMP][@V:F]'",
    }

    @pytest.mark.parametrize("spec", sorted(SNAPSHOTS))
    def test_error_message_snapshot(self, spec):
        with pytest.raises(ValueError) as excinfo:
            parse_scenario_spec(spec)
        message = str(excinfo.value)
        assert message == self.SNAPSHOTS[spec]
        assert "\n" not in message
