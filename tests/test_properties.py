"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.aging.probabilistic import duty_cycle_tail_probability
from repro.aging.snm import CalibratedSnmModel, default_snm_model
from repro.core.bias_balancer import BiasBalancingRegister
from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
)
from repro.quantization.bitops import (
    bit_probabilities,
    invert_words,
    pack_bits_to_words,
    pack_words_to_bits,
    rotate_words,
    unpack_bits,
)
from repro.quantization.fixed_point import FixedPointFormat
from repro.quantization.float32 import float32_to_words, words_to_float32
from repro.quantization.linear import (
    AsymmetricQuantizer,
    SymmetricQuantizer,
    dequantize_with_params,
    levels_to_words,
    words_to_levels,
)

word_bits_strategy = st.sampled_from([4, 8, 16, 32])


def words_strategy(word_bits, max_size=64):
    return hnp.arrays(dtype=np.uint64, shape=st.integers(1, max_size),
                      elements=st.integers(0, 2**word_bits - 1))


@st.composite
def words_with_bits(draw, max_size=64):
    bits = draw(word_bits_strategy)
    words = draw(words_strategy(bits, max_size))
    return bits, words


class TestBitopsProperties:
    @given(words_with_bits())
    def test_unpack_pack_roundtrip(self, data):
        bits, words = data
        stream = pack_words_to_bits(words, bits)
        assert np.array_equal(pack_bits_to_words(stream, bits), words)

    @given(words_with_bits())
    def test_unpack_shape_and_binary(self, data):
        bits, words = data
        matrix = unpack_bits(words, bits)
        assert matrix.shape == (words.size, bits)
        assert set(np.unique(matrix)).issubset({0, 1})

    @given(words_with_bits())
    def test_double_inversion_is_identity(self, data):
        bits, words = data
        assert np.array_equal(invert_words(invert_words(words, bits), bits), words)

    @given(words_with_bits(), st.integers(0, 63))
    def test_rotation_roundtrip(self, data, amount):
        bits, words = data
        rotated = rotate_words(words, bits, amount % bits)
        back = rotate_words(rotated, bits, (bits - amount % bits) % bits)
        assert np.array_equal(back, words)

    @given(words_with_bits())
    def test_inversion_complements_probabilities(self, data):
        bits, words = data
        original = bit_probabilities(words, bits)
        inverted = bit_probabilities(invert_words(words, bits), bits)
        assert np.allclose(original + inverted, 1.0)


class TestQuantizationProperties:
    @given(hnp.arrays(dtype=np.float32, shape=st.integers(1, 200),
                      elements=st.floats(-10, 10, width=32)))
    def test_float32_word_roundtrip(self, values):
        assert np.array_equal(words_to_float32(float32_to_words(values)), values)

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 200),
                      elements=st.floats(-5, 5)))
    def test_symmetric_quantization_error_bounded(self, values):
        levels, params = SymmetricQuantizer(8).quantize(values)
        reconstructed = dequantize_with_params(levels, params)
        assert np.max(np.abs(values - reconstructed)) <= params.scale * 0.5 + 1e-9

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 200),
                      elements=st.floats(-5, 5)))
    def test_asymmetric_levels_in_range(self, values):
        levels, params = AsymmetricQuantizer(8).quantize(values)
        assert levels.min() >= params.qmin and levels.max() <= params.qmax

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 100),
                      elements=st.floats(-3, 3)))
    def test_twos_complement_word_roundtrip(self, values):
        levels, params = SymmetricQuantizer(8).quantize(values)
        assert np.array_equal(words_to_levels(levels_to_words(levels, params), params), levels)

    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 100),
                      elements=st.floats(-0.99, 0.99)),
           st.integers(0, 7))
    def test_fixed_point_error_bounded(self, values, fraction_bits):
        fmt = FixedPointFormat(1, fraction_bits)
        recovered = fmt.from_words(fmt.to_words(values))
        assert np.max(np.abs(values - recovered)) <= fmt.resolution + 1e-12


class TestPolicyProperties:
    @settings(deadline=None)
    @given(words_with_bits(), st.integers(0, 5))
    def test_all_policies_decode_to_original(self, data, block_index):
        bits, words = data
        policies = [NoMitigationPolicy(),
                    PeriodicInversionPolicy(bits, "write"),
                    PeriodicInversionPolicy(bits, "location"),
                    BarrelShifterPolicy(bits),
                    DnnLifePolicy(bits, seed=0)]
        for policy in policies:
            encoded, metadata = policy.encode_block(words, block_index)
            assert np.array_equal(policy.decode_block(encoded, metadata), words)

    @settings(deadline=None)
    @given(words_with_bits())
    def test_encoded_words_fit_width(self, data):
        bits, words = data
        for policy in (PeriodicInversionPolicy(bits), BarrelShifterPolicy(bits),
                       DnnLifePolicy(bits, seed=1)):
            encoded, _ = policy.encode_block(words, 0)
            assert int(encoded.max()) < 2**bits

    @given(st.integers(1, 8), st.integers(1, 300))
    def test_bias_balancer_phase_balanced_over_whole_periods(self, num_bits, periods):
        register = BiasBalancingRegister(num_bits)
        ticks = register.period * periods
        phases = [register.tick() for _ in range(ticks)]
        assert sum(phases) == ticks // 2


class TestAgingModelProperties:
    @given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 100),
                      elements=st.floats(0, 1)))
    def test_snm_degradation_within_anchor_bounds(self, duty):
        model = default_snm_model()
        degradation = model.degradation_percent(duty)
        assert np.all(degradation >= model.best_case_percent() - 1e-9)
        assert np.all(degradation <= model.worst_case_percent() + 1e-9)

    @given(st.floats(0, 0.5))
    def test_snm_symmetry(self, duty):
        model = default_snm_model()
        low = model.degradation_percent(np.array([duty]))[0]
        high = model.degradation_percent(np.array([1.0 - duty]))[0]
        assert low == high

    @given(st.floats(10.9, 26.0), st.floats(27.0, 60.0))
    def test_calibrated_model_hits_custom_anchors(self, best, worst):
        model = CalibratedSnmModel(best_percent=best, worst_percent=worst)
        assert model.best_case_percent() == pytest.approx(best, rel=1e-9)
        assert model.worst_case_percent() == pytest.approx(worst, rel=1e-9)

    @given(st.integers(2, 60), st.floats(0.05, 0.95))
    def test_eq1_is_probability_and_monotone(self, num_blocks, rho):
        previous = 0.0
        for b in range(num_blocks // 2 + 1):
            value = duty_cycle_tail_probability(num_blocks, rho, b)
            assert 0.0 <= value <= 1.0 + 1e-12
            assert value >= previous - 1e-12
            previous = value


# --------------------------------------------------------------------------- #
# AgingResult payload round-trips across every shipped SNM model
# --------------------------------------------------------------------------- #
@st.composite
def snm_model_strategy(draw):
    """Any shipped SnmDegradationModel, with randomised (valid) parameters."""
    from repro.aging.nbti import NbtiDeviceModel, ReactionDiffusionSnmModel

    kind = draw(st.sampled_from(["calibrated", "reaction_diffusion"]))
    if kind == "calibrated":
        best = draw(st.floats(1.0, 20.0))
        worst = draw(st.floats(21.0, 60.0))
        return CalibratedSnmModel(best_percent=best, worst_percent=worst,
                                  reference_years=draw(st.floats(1.0, 10.0)),
                                  time_exponent=draw(st.floats(0.1, 0.5)))
    device = NbtiDeviceModel(
        activation_energy_ev=draw(st.floats(0.05, 0.2)),
        time_exponent=draw(st.floats(0.1, 0.5)),
        temperature_kelvin=draw(st.floats(300.0, 400.0)),
        reference_dvth_volts=draw(st.floats(0.01, 0.1)))
    return ReactionDiffusionSnmModel(device=device,
                                     worst_percent=draw(st.floats(10.0, 40.0)))


class TestAgingResultPayloadRoundTrip:
    """to_payload/from_payload must be lossless for every shipped SNM model."""

    @given(model=snm_model_strategy(),
           duty=hnp.arrays(dtype=np.float64, shape=st.tuples(
               st.integers(1, 8), st.integers(1, 8)),
               elements=st.floats(0, 1)),
           years=st.floats(0.5, 20.0))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_through_json(self, model, duty, years):
        import json

        from repro.core.simulation import AgingResult

        result = AgingResult(policy_name="none",
                             policy_description={"policy": "none"},
                             duty_cycles=duty, num_inferences=3, num_blocks=2,
                             snm_model=model, years=years)
        payload = json.loads(json.dumps(result.to_payload()))
        rebuilt = AgingResult.from_payload(payload)
        assert np.array_equal(rebuilt.duty_cycles, result.duty_cycles)
        assert rebuilt.duty_cycles.shape == result.duty_cycles.shape
        assert rebuilt.snm_model == model
        assert rebuilt.years == years
        assert np.array_equal(rebuilt.snm_degradation(), result.snm_degradation())

    @given(model=snm_model_strategy())
    @settings(max_examples=20, deadline=None)
    def test_round_trip_through_to_jsonable(self, model):
        from repro.core.simulation import AgingResult
        from repro.utils.serialization import to_jsonable

        result = AgingResult("none", {}, np.array([[0.25, 0.75]]), 2, 1,
                             snm_model=model)
        rebuilt = AgingResult.from_payload(to_jsonable(result.to_payload()))
        assert rebuilt.snm_model == model

    def test_unknown_model_class_is_rejected_with_known_list(self):
        from repro.core.simulation import _snm_model_from_payload

        with pytest.raises(ValueError, match="unknown SNM model class"):
            _snm_model_from_payload({"class": "NoSuchModel", "fields": {}})

    def test_newly_shipped_models_are_discovered(self):
        """A new SnmDegradationModel subclass round-trips without registry edits."""
        import dataclasses

        from repro.aging.snm import SnmDegradationModel
        from repro.core.simulation import AgingResult

        @dataclasses.dataclass(frozen=True)
        class LinearTestSnmModel(SnmDegradationModel):
            slope: float = 20.0

            def degradation_percent(self, duty_cycle, years=7.0):
                duty = np.asarray(duty_cycle, dtype=np.float64)
                return self.slope * np.maximum(duty, 1.0 - duty)

        result = AgingResult("none", {}, np.array([[0.5]]), 1, 1,
                             snm_model=LinearTestSnmModel(slope=12.5))
        rebuilt = AgingResult.from_payload(result.to_payload())
        assert isinstance(rebuilt.snm_model, LinearTestSnmModel)
        assert rebuilt.snm_model.slope == 12.5
