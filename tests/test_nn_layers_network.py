"""Tests for repro.nn.layers, repro.nn.composite and repro.nn.network."""

import numpy as np
import pytest

from repro.nn.composite import Bottleneck, Inception
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    kaiming_std,
)
from repro.nn.network import Network, concatenate_networks


class TestConv2d:
    def test_weight_shape(self):
        layer = Conv2d(out_channels=16, in_channels=3, kernel_size=(5, 5))
        assert layer.weight_shape == (16, 3, 5, 5)
        assert layer.weight_count == 16 * 3 * 25
        assert layer.bias_shape == (16,)

    def test_parameter_count_includes_bias(self):
        layer = Conv2d(out_channels=8, in_channels=2, kernel_size=(3, 3))
        assert layer.parameter_count == 8 * 2 * 9 + 8

    def test_no_bias(self):
        layer = Conv2d(out_channels=8, in_channels=2, kernel_size=(3, 3), use_bias=False)
        assert layer.bias_shape is None
        assert layer.parameter_count == 8 * 2 * 9

    def test_output_shape_with_stride_and_padding(self):
        layer = Conv2d(out_channels=64, in_channels=3, kernel_size=(11, 11), stride=4, padding=2)
        assert layer.output_shape((3, 224, 224)) == (64, 55, 55)

    def test_output_shape_channel_mismatch(self):
        layer = Conv2d(out_channels=4, in_channels=3, kernel_size=(3, 3))
        with pytest.raises(ValueError):
            layer.output_shape((1, 8, 8))

    def test_fan_in(self):
        assert Conv2d(out_channels=4, in_channels=3, kernel_size=(3, 3)).fan_in == 27

    def test_macs(self):
        layer = Conv2d(out_channels=2, in_channels=1, kernel_size=(3, 3))
        assert layer.macs((1, 5, 5)) == 2 * 3 * 3 * 9

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            Conv2d(out_channels=4, in_channels=3, kernel_size=(3, 3), groups=2)


class TestLinearAndOthers:
    def test_linear_shapes(self):
        layer = Linear(out_features=10, in_features=20)
        assert layer.weight_shape == (10, 20)
        assert layer.fan_in == 20
        assert layer.output_shape((20, 1, 1)) == (10, 1, 1)

    def test_linear_input_mismatch(self):
        with pytest.raises(ValueError):
            Linear(out_features=10, in_features=20).output_shape((30, 1, 1))

    def test_pooling_shapes(self):
        assert MaxPool2d(kernel_size=2, stride=2).output_shape((4, 8, 8)) == (4, 4, 4)
        assert MaxPool2d(kernel_size=3, stride=2).output_shape((4, 13, 13)) == (4, 6, 6)
        assert AvgPool2d(kernel_size=2).output_shape((4, 8, 8)) == (4, 4, 4)

    def test_global_avg_pool(self):
        assert GlobalAvgPool2d().output_shape((512, 7, 7)) == (512, 1, 1)

    def test_flatten(self):
        assert Flatten().output_shape((4, 5, 5)) == (100, 1, 1)

    def test_weightless_layers(self):
        for layer in (ReLU(), MaxPool2d(), Dropout(), Flatten()):
            assert not layer.has_weights
            assert layer.parameter_count == 0

    def test_batchnorm_not_in_weight_memory(self):
        layer = BatchNorm2d(num_features=8)
        assert layer.has_weights
        assert layer.counts_toward_weight_memory is False

    def test_kaiming_std(self):
        layer = Conv2d(out_channels=4, in_channels=2, kernel_size=(3, 3))
        assert kaiming_std(layer) == pytest.approx(np.sqrt(2.0 / 18))


class TestCompositeLayers:
    def test_inception_output_channels(self):
        module = Inception(name="inc", in_channels=192, ch1x1=64, ch3x3_reduce=96,
                           ch3x3=128, ch5x5_reduce=16, ch5x5=32, pool_proj=32)
        assert module.out_channels == 256
        assert module.output_shape((192, 28, 28)) == (256, 28, 28)

    def test_inception_parameter_count(self):
        module = Inception(name="inc", in_channels=192, ch1x1=64, ch3x3_reduce=96,
                           ch3x3=128, ch5x5_reduce=16, ch5x5=32, pool_proj=32)
        expected_weights = (192 * 64 + 192 * 96 + 96 * 128 * 9
                            + 192 * 16 + 16 * 32 * 25 + 192 * 32)
        assert module.weight_count == expected_weights

    def test_inception_channel_mismatch(self):
        module = Inception(name="inc", in_channels=192, ch1x1=64, ch3x3_reduce=96,
                           ch3x3=128, ch5x5_reduce=16, ch5x5=32, pool_proj=32)
        with pytest.raises(ValueError):
            module.output_shape((100, 28, 28))

    def test_bottleneck_projection(self):
        block = Bottleneck(name="b", in_channels=64, planes=64, stride=1)
        assert block.needs_projection  # 64 != 64 * 4
        assert block.out_channels == 256
        assert block.output_shape((64, 56, 56)) == (256, 56, 56)

    def test_bottleneck_stride_downsamples(self):
        block = Bottleneck(name="b", in_channels=256, planes=128, stride=2)
        assert block.output_shape((256, 56, 56)) == (512, 28, 28)

    def test_bottleneck_weight_sublayers_exclude_batchnorm(self):
        block = Bottleneck(name="b", in_channels=64, planes=64)
        kinds = {type(layer).__name__ for layer in block.iter_weight_sublayers()}
        assert kinds == {"Conv2d"}


class TestNetwork:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Network("dup", [ReLU(name="a"), ReLU(name="a")])

    def test_anonymous_layers_get_names(self):
        network = Network("anon", [ReLU(), ReLU()])
        assert len({layer.name for layer in network.layers}) == 2

    def test_layer_lookup(self, tiny_network):
        assert tiny_network.layer("conv1").name == "conv1"
        with pytest.raises(KeyError):
            tiny_network.layer("missing")

    def test_weight_layers_order(self, tiny_network):
        names = [layer.name for layer in tiny_network.weight_layers()]
        assert names == ["conv1", "conv2", "fc1", "fc2"]

    def test_parameter_and_weight_counts(self, tiny_network):
        weights = 4 * 1 * 9 + 8 * 4 * 9 + 16 * 968 + 4 * 16
        biases = 4 + 8 + 16 + 4
        assert tiny_network.weight_count == weights
        assert tiny_network.parameter_count == weights + biases

    def test_model_size(self, tiny_network):
        assert tiny_network.model_size_bytes(4.0) == tiny_network.parameter_count * 4.0

    def test_output_shape(self, tiny_network):
        assert tiny_network.output_shape() == (4, 1, 1)

    def test_layer_shapes_chain(self, tiny_network):
        shapes = dict(tiny_network.layer_shapes())
        assert shapes["conv1"] == (4, 26, 26)
        assert shapes["fc2"] == (4, 1, 1)

    def test_macs_positive(self, tiny_network):
        assert tiny_network.macs() > 0

    def test_flat_weights_concatenation(self, tiny_network):
        flat = tiny_network.flat_weights()
        assert flat.size == tiny_network.weight_count
        assert flat.dtype == np.float32

    def test_flat_weights_requires_attachment(self):
        network = Network("noweights", [Linear(name="fc", out_features=2, in_features=3)])
        with pytest.raises(ValueError):
            network.flat_weights()

    def test_validate_weights_shape_mismatch(self, tiny_network):
        tiny_network.layer("fc2").weights = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            tiny_network.validate_weights()

    def test_summary_contains_layers(self, tiny_network):
        text = tiny_network.summary()
        assert "conv1" in text and "TOTAL" in text

    def test_describe(self, tiny_network):
        description = tiny_network.describe()
        assert description["name"] == "tiny_cnn"
        assert description["num_weight_layers"] == 4

    def test_concatenate_networks(self, tiny_network, lenet_network):
        combined = concatenate_networks("multi", [tiny_network, lenet_network])
        assert combined.parameter_count == (tiny_network.parameter_count
                                            + lenet_network.parameter_count)
        assert combined.weight_count == (tiny_network.weight_count
                                         + lenet_network.weight_count)
