"""End-to-end integration tests.

These tie every substrate together the way the examples do:

* the DNN-Life transducers are bit-exact transparent to the accelerator — an
  inference computed with weights that went through WDE -> SRAM -> RDD is
  identical to the reference numpy forward pass;
* the full analysis -> mitigation -> report pipeline reproduces the paper's
  qualitative claims on a small workload;
* the analytic probabilistic model (Eq. 1) agrees with the Monte-Carlo memory
  simulation.
"""

import numpy as np
import pytest

from repro.aging.probabilistic import duty_cycle_tail_probability, empirical_tail_probability
from repro.core.framework import DnnLife
from repro.core.policies import DnnLifePolicy, NoMitigationPolicy
from repro.core.simulation import AgingSimulator
from repro.memory.sram import SramArray
from repro.nn.functional import forward
from repro.quantization.formats import get_format


class TestTransducerTransparency:
    """Encoding weights into the memory and decoding them back must never
    change what the processing array computes."""

    @pytest.mark.parametrize("format_name", ["float32", "int8_symmetric", "int8_asymmetric"])
    def test_roundtrip_through_sram_is_bit_exact(self, tiny_network, tiny_accelerator,
                                                 format_name, rng):
        data_format = get_format(format_name)
        scheduler = tiny_accelerator.build_scheduler(tiny_network, data_format)
        policy = DnnLifePolicy(data_format.word_bits, trbg_bias=0.7, bias_balancing=True,
                               seed=5)
        memory = SramArray(scheduler.geometry)
        for block in scheduler.iter_blocks():
            encoded, metadata = policy.encode_block(block.words, block.index)
            memory.write_block(encoded, residency=1.0,
                               start_row=block.region * scheduler.words_per_block)
            read_back = memory.read_rows(
                np.arange(block.region * scheduler.words_per_block,
                          block.region * scheduler.words_per_block + block.num_words))
            decoded = policy.decode_block(read_back, metadata)
            assert np.array_equal(decoded, np.asarray(block.words, dtype=np.uint64))

    def test_inference_identical_with_and_without_mitigation(self, mnist_network, rng):
        # Quantize the weights, run the reference forward pass, then run a
        # forward pass whose weights made a WDE -> RDD round trip: identical.
        data_format = get_format("int8_symmetric")
        inputs = rng.normal(size=(2, 1, 28, 28))
        reference = None
        for use_mitigation in (False, True):
            network = mnist_network
            decoded_layers = {}
            policy = DnnLifePolicy(8, seed=11)
            for layer in network.weight_layers():
                words, decode = data_format.to_words_with_decoder(
                    np.asarray(layer.weights, dtype=np.float32))
                if use_mitigation:
                    encoded, metadata = policy.encode_block(words, 0)
                    words = policy.decode_block(encoded, metadata)
                decoded_layers[layer.name] = decode(words).reshape(layer.weight_shape)
            original = {layer.name: layer.weights for layer in network.weight_layers()}
            try:
                for layer in network.weight_layers():
                    layer.weights = decoded_layers[layer.name].astype(np.float32)
                outputs = forward(network, inputs)
            finally:
                for layer in network.weight_layers():
                    layer.weights = original[layer.name]
            if reference is None:
                reference = outputs
            else:
                assert np.array_equal(outputs, reference)


class TestEndToEndPipeline:
    def test_paper_storyline_on_small_workload(self, mnist_network):
        """No mitigation ages badly, DNN-Life keeps every cell near optimum,
        bias balancing rescues a biased TRBG, and the overhead stays small."""
        framework = DnnLife(mnist_network, data_format="int8_asymmetric",
                            num_inferences=50, seed=0)
        comparison = framework.compare_policies()
        summaries = {label: result.summary() for label, result in comparison.results.items()}

        none_mean = summaries["none"]["mean_snm_degradation_percent"]
        balanced = [label for label in summaries
                    if "bias=0.7" in label and "without" not in label][0]
        unbalanced = [label for label in summaries
                      if "bias=0.7" in label and "without" in label][0]
        ideal = [label for label in summaries if "bias=0.5" in label][0]

        assert summaries[ideal]["mean_snm_degradation_percent"] < none_mean
        assert (summaries[balanced]["mean_snm_degradation_percent"]
                < summaries[unbalanced]["mean_snm_degradation_percent"])
        assert "DNN-Life" in comparison.best_policy()

        overhead = framework.mitigation_energy_overhead("dnn_life")
        assert overhead["overhead_percent_of_memory_energy"] < 10.0

    def test_histogram_shift_towards_best_bin(self, mnist_network):
        framework = DnnLife(mnist_network, data_format="int8_symmetric",
                            num_inferences=100, seed=1)
        baseline = framework.simulate("none")
        mitigated = framework.simulate("dnn_life")
        bins = framework.degradation_bins()
        baseline_hist, _, _ = baseline.histogram(bins)
        mitigated_hist, _, _ = mitigated.histogram(bins)
        # DNN-Life concentrates cells in the lowest-degradation bins.  (With
        # this small workload the whole network fits in a single block, so the
        # effective K is only the number of inferences; the concentration is
        # therefore softer than in the paper-scale Fig. 9 runs.)
        assert mitigated_hist[0] > baseline_hist[0]
        assert mitigated_hist[0] > 70.0
        assert mitigated_hist[0] + mitigated_hist[1] > 95.0
        assert float(mitigated.snm_degradation().mean()) < 13.0

    def test_monte_carlo_matches_probabilistic_model(self, tiny_fp32_scheduler):
        """Empirical tail fractions of the simulated duty-cycles agree with
        Eq. (1) for the balanced mantissa bit columns."""
        result = AgingSimulator(tiny_fp32_scheduler, NoMitigationPolicy(),
                                num_inferences=1, seed=0).run()
        num_blocks = tiny_fp32_scheduler.num_blocks
        # Mantissa low bits: probability of '1' close to 0.5 and independent
        # across blocks, matching the model's assumptions.
        mantissa_duty = result.duty_cycles[:, 25:]
        empirical = empirical_tail_probability(mantissa_duty, 0.3)
        analytic = duty_cycle_tail_probability(num_blocks, 0.5, int(0.3 * num_blocks))
        assert empirical == pytest.approx(analytic, abs=0.1)

    def test_seed_reproducibility_end_to_end(self, mnist_network):
        first = DnnLife(mnist_network, num_inferences=10, seed=42).simulate("dnn_life")
        second = DnnLife(mnist_network, num_inferences=10, seed=42).simulate("dnn_life")
        assert np.array_equal(first.duty_cycles, second.duty_cycles)

    def test_different_accelerators_same_conclusion(self, mnist_network):
        from repro.accelerator.tpu import TpuLikeNpu

        for accelerator in (None, TpuLikeNpu()):
            framework = DnnLife(mnist_network, accelerator=accelerator,
                                data_format="int8_symmetric", num_inferences=30, seed=0)
            baseline = framework.simulate("none")
            mitigated = framework.simulate("dnn_life")
            assert (mitigated.snm_degradation().mean() < baseline.snm_degradation().mean())
