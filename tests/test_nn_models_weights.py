"""Tests for repro.nn.models, repro.nn.weights and repro.nn.functional."""

import numpy as np
import pytest

from repro.nn.functional import classify, forward
from repro.nn.models import (
    MODEL_ZOO,
    PUBLISHED_ACCURACY,
    build_model,
    custom_mnist_cnn,
)
from repro.nn.weights import (
    WeightGenerationConfig,
    attach_synthetic_weights,
    load_weights_npz,
    save_weights_npz,
    weight_statistics,
)


class TestModelZoo:
    def test_all_models_build(self):
        for name in MODEL_ZOO:
            network = build_model(name)
            assert network.parameter_count > 0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("resnet9000")

    def test_alexnet_parameter_count(self):
        # The published single-tower AlexNet has ~61.1M parameters.
        assert build_model("alexnet").parameter_count == pytest.approx(61.1e6, rel=0.01)

    def test_vgg16_parameter_count(self):
        assert build_model("vgg16").parameter_count == pytest.approx(138.36e6, rel=0.01)

    def test_googlenet_parameter_count(self):
        # Inception-v1 main branch: ~7M parameters (~27 MB at float32).
        assert build_model("googlenet").parameter_count == pytest.approx(7.0e6, rel=0.05)

    def test_resnet152_parameter_count(self):
        assert build_model("resnet152").parameter_count == pytest.approx(60.2e6, rel=0.02)

    def test_fig1_size_ordering(self):
        sizes = {name: build_model(name).model_size_mb()
                 for name in ("alexnet", "googlenet", "vgg16", "resnet152")}
        # VGG-16 is by far the largest; GoogLeNet by far the smallest (Fig. 1a).
        assert sizes["vgg16"] > sizes["alexnet"] > sizes["googlenet"]
        assert sizes["vgg16"] > sizes["resnet152"] > sizes["googlenet"]

    def test_published_accuracy_available_for_fig1_models(self):
        for name in ("alexnet", "googlenet", "vgg16", "resnet152"):
            top1, top5 = PUBLISHED_ACCURACY[name]
            assert 50.0 < top1 < top5 < 100.0

    def test_all_networks_propagate_shapes(self):
        for name in MODEL_ZOO:
            network = build_model(name)
            assert network.output_shape()[0] in (10, 1000)

    def test_custom_mnist_matches_paper_spec(self):
        # CONV(16,1,5,5), CONV(50,16,5,5), FC(256,800), FC(10,256).
        network = custom_mnist_cnn()
        conv1, conv2 = network.conv_layers()
        fc1, fc2 = network.linear_layers()
        assert conv1.weight_shape == (16, 1, 5, 5)
        assert conv2.weight_shape == (50, 16, 5, 5)
        assert fc1.weight_shape == (256, 800)
        assert fc2.weight_shape == (10, 256)

    def test_custom_mnist_weight_count(self):
        network = custom_mnist_cnn()
        assert network.weight_count == 16 * 25 + 50 * 16 * 25 + 256 * 800 + 10 * 256


class TestSyntheticWeights:
    def test_attach_fills_all_layers(self, mnist_network):
        assert mnist_network.has_weights_attached
        for layer in mnist_network.weight_layers():
            assert layer.weights.shape == layer.weight_shape
            assert layer.weights.dtype == np.float32

    def test_deterministic_per_seed(self):
        first = attach_synthetic_weights(custom_mnist_cnn(), seed=11)
        second = attach_synthetic_weights(custom_mnist_cnn(), seed=11)
        assert np.array_equal(first.flat_weights(), second.flat_weights())

    def test_different_seeds_differ(self):
        first = attach_synthetic_weights(custom_mnist_cnn(), seed=1)
        second = attach_synthetic_weights(custom_mnist_cnn(), seed=2)
        assert not np.array_equal(first.flat_weights(), second.flat_weights())

    def test_trained_like_statistics(self, mnist_network):
        stats = weight_statistics(mnist_network)
        for layer_stats in stats.values():
            # Zero-mean-ish, small scale, both signs present.
            assert abs(layer_stats["mean"]) < 0.1
            assert 0 < layer_stats["std"] < 1.0
            assert 0.2 < layer_stats["fraction_negative"] < 0.8

    def test_scale_follows_fan_in(self, mnist_network):
        stats = weight_statistics(mnist_network)
        # fc1 has a much larger fan-in (800) than conv1 (25), so its weights
        # must be substantially smaller.
        assert stats["fc1"]["std"] < stats["conv1"]["std"]

    def test_skew_produces_asymmetric_range(self, mnist_network):
        stats = weight_statistics(mnist_network)
        asymmetry = [abs(s["max"]) != pytest.approx(abs(s["min"]), rel=0.01)
                     for s in stats.values()]
        assert any(asymmetry)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WeightGenerationConfig(outlier_fraction=1.5)
        with pytest.raises(ValueError):
            WeightGenerationConfig(gain=-1.0)

    def test_checkpoint_roundtrip(self, tmp_path, mnist_network):
        path = tmp_path / "weights.npz"
        save_weights_npz(mnist_network, path)
        fresh = load_weights_npz(custom_mnist_cnn(), path)
        assert np.array_equal(fresh.flat_weights(), mnist_network.flat_weights())

    def test_checkpoint_missing_layer_raises(self, tmp_path, mnist_network):
        path = tmp_path / "weights.npz"
        np.savez_compressed(path, **{"conv1.weight": np.zeros((16, 1, 5, 5), np.float32)})
        with pytest.raises(KeyError):
            load_weights_npz(custom_mnist_cnn(), path)


class TestFunctionalForward:
    def test_output_shape_and_normalisation(self, mnist_network, rng):
        inputs = rng.normal(size=(3, 1, 28, 28))
        outputs = forward(mnist_network, inputs)
        assert outputs.shape == (3, 10)
        assert np.allclose(outputs.sum(axis=1), 1.0)
        assert np.all(outputs >= 0)

    def test_classify_returns_indices(self, mnist_network, rng):
        labels = classify(mnist_network, rng.normal(size=(4, 1, 28, 28)))
        assert labels.shape == (4,)
        assert set(labels).issubset(set(range(10)))

    def test_deterministic(self, mnist_network, rng):
        inputs = rng.normal(size=(2, 1, 28, 28))
        assert np.array_equal(forward(mnist_network, inputs), forward(mnist_network, inputs))

    def test_partial_forward(self, mnist_network, rng):
        inputs = rng.normal(size=(1, 1, 28, 28))
        conv1_out = forward(mnist_network, inputs, upto_layer="conv1")
        assert conv1_out.shape == (1, 16, 24, 24)

    def test_input_shape_checked(self, mnist_network, rng):
        with pytest.raises(ValueError):
            forward(mnist_network, rng.normal(size=(1, 3, 28, 28)))

    def test_lenet_forward(self, lenet_network, rng):
        outputs = forward(lenet_network, rng.normal(size=(2, 1, 28, 28)))
        assert outputs.shape == (2, 10)

    def test_conv_matches_manual_dot_product(self, rng):
        from repro.nn.functional import conv2d
        from repro.nn.layers import Conv2d

        layer = Conv2d(name="c", out_channels=1, in_channels=1, kernel_size=(3, 3))
        layer.weights = rng.normal(size=(1, 1, 3, 3)).astype(np.float32)
        layer.bias = np.zeros(1, dtype=np.float32)
        inputs = rng.normal(size=(1, 1, 3, 3))
        expected = float(np.sum(inputs[0, 0] * layer.weights[0, 0]))
        assert conv2d(inputs, layer)[0, 0, 0, 0] == pytest.approx(expected)
