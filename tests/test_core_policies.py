"""Tests for the aging-mitigation policies."""

import numpy as np
import pytest

from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
    default_policy_suite,
    make_policy,
)
from repro.quantization.bitops import hamming_weight, unpack_bits


def _random_words(rng, count, bits):
    return rng.integers(0, 2**bits, size=count, dtype=np.uint64)


class TestNoMitigation:
    def test_encode_is_identity(self, rng):
        policy = NoMitigationPolicy()
        words = _random_words(rng, 32, 8)
        encoded, metadata = policy.encode_block(words, 0)
        assert np.array_equal(encoded, words)
        assert metadata is None
        assert np.array_equal(policy.decode_block(encoded, metadata), words)

    def test_no_metadata_overhead(self):
        assert NoMitigationPolicy().metadata_bits_per_word == 0.0


class TestPeriodicInversion:
    def test_write_granularity_alternates_within_block(self, rng):
        policy = PeriodicInversionPolicy(word_bits=8, granularity="write")
        words = _random_words(rng, 6, 8)
        encoded, parities = policy.encode_block(words, 0)
        assert parities.tolist() == [0, 1, 0, 1, 0, 1]
        assert np.array_equal(encoded[::2], words[::2])
        assert np.array_equal(encoded[1::2], words[1::2] ^ 0xFF)

    def test_write_counter_carries_across_blocks(self, rng):
        policy = PeriodicInversionPolicy(word_bits=8, granularity="write")
        policy.encode_block(_random_words(rng, 3, 8), 0)       # odd-length block
        _, parities = policy.encode_block(_random_words(rng, 2, 8), 1)
        assert parities.tolist() == [1, 0]

    def test_location_granularity_alternates_per_row(self, rng):
        policy = PeriodicInversionPolicy(word_bits=8, granularity="location")
        words = _random_words(rng, 4, 8)
        _, first = policy.encode_block(words, 0, start_row=0)
        _, second = policy.encode_block(words, 1, start_row=0)
        assert first.tolist() == [0, 0, 0, 0]
        assert second.tolist() == [1, 1, 1, 1]

    def test_location_granularity_tracks_rows_independently(self, rng):
        policy = PeriodicInversionPolicy(word_bits=8, granularity="location")
        policy.encode_block(_random_words(rng, 4, 8), 0, start_row=0)
        _, parities = policy.encode_block(_random_words(rng, 4, 8), 1, start_row=4)
        assert parities.tolist() == [0, 0, 0, 0]

    def test_location_counters_grow_and_reset(self, rng):
        """The vectorized per-row counter array grows on demand and writing a
        high row range leaves the low rows' counters untouched."""
        policy = PeriodicInversionPolicy(word_bits=8, granularity="location")
        words = _random_words(rng, 3, 8)
        _, high = policy.encode_block(words, 0, start_row=1000)
        assert high.tolist() == [0, 0, 0]
        _, high_again = policy.encode_block(words, 1, start_row=1000)
        assert high_again.tolist() == [1, 1, 1]
        _, low = policy.encode_block(words, 2, start_row=0)
        assert low.tolist() == [0, 0, 0]
        policy.reset()
        _, after_reset = policy.encode_block(words, 0, start_row=1000)
        assert after_reset.tolist() == [0, 0, 0]

    def test_decode_restores_original(self, rng):
        for granularity in ("write", "location"):
            policy = PeriodicInversionPolicy(word_bits=16, granularity=granularity)
            words = _random_words(rng, 64, 16)
            encoded, metadata = policy.encode_block(words, 0)
            assert np.array_equal(policy.decode_block(encoded, metadata), words)

    def test_reset_clears_counters(self, rng):
        policy = PeriodicInversionPolicy(word_bits=8)
        policy.encode_block(_random_words(rng, 5, 8), 0)
        policy.reset()
        _, parities = policy.encode_block(_random_words(rng, 2, 8), 0)
        assert parities.tolist() == [0, 1]

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            PeriodicInversionPolicy(8, granularity="per-bank")

    def test_name_reflects_granularity(self):
        assert PeriodicInversionPolicy(8).name == "inversion"
        assert PeriodicInversionPolicy(8, "location").name == "inversion_per_location"


class TestBarrelShifter:
    def test_shift_amounts_follow_write_counter(self, rng):
        policy = BarrelShifterPolicy(word_bits=8)
        _, shifts = policy.encode_block(_random_words(rng, 10, 8), 0)
        assert shifts.tolist() == [i % 8 for i in range(10)]
        _, shifts2 = policy.encode_block(_random_words(rng, 4, 8), 1)
        assert shifts2.tolist() == [(10 + i) % 8 for i in range(4)]

    def test_rotation_preserves_hamming_weight(self, rng):
        policy = BarrelShifterPolicy(word_bits=8)
        words = _random_words(rng, 100, 8)
        encoded, _ = policy.encode_block(words, 0)
        assert np.array_equal(hamming_weight(words, 8), hamming_weight(encoded, 8))

    def test_known_rotation(self):
        policy = BarrelShifterPolicy(word_bits=8)
        words = np.array([0b00000001, 0b00000001], dtype=np.uint64)
        encoded, shifts = policy.encode_block(words, 0)
        assert shifts.tolist() == [0, 1]
        assert encoded.tolist() == [0b00000001, 0b00000010]

    def test_decode_restores_original(self, rng):
        policy = BarrelShifterPolicy(word_bits=32)
        words = _random_words(rng, 200, 32)
        encoded, metadata = policy.encode_block(words, 0)
        assert np.array_equal(policy.decode_block(encoded, metadata), words)

    def test_reset(self, rng):
        policy = BarrelShifterPolicy(word_bits=8)
        policy.encode_block(_random_words(rng, 5, 8), 0)
        policy.reset()
        _, shifts = policy.encode_block(_random_words(rng, 3, 8), 0)
        assert shifts.tolist() == [0, 1, 2]


class TestDnnLifePolicy:
    def test_decode_restores_original(self, rng):
        policy = DnnLifePolicy(word_bits=8, seed=0)
        words = _random_words(rng, 128, 8)
        encoded, enables = policy.encode_block(words, 0)
        assert np.array_equal(policy.decode_block(encoded, enables), words)

    def test_enable_bits_drive_inversion(self, rng):
        policy = DnnLifePolicy(word_bits=8, seed=0)
        words = _random_words(rng, 64, 8)
        encoded, enables = policy.encode_block(words, 0)
        expected = np.where(enables.astype(bool), words ^ 0xFF, words)
        assert np.array_equal(encoded, expected)

    def test_fresh_randomness_every_block(self, rng):
        policy = DnnLifePolicy(word_bits=8, seed=0)
        words = _random_words(rng, 256, 8)
        _, first = policy.encode_block(words, 0)
        _, second = policy.encode_block(words, 0)
        assert not np.array_equal(first, second)

    def test_metadata_overhead_per_word(self):
        assert DnnLifePolicy(word_bits=8, seed=0).metadata_bits_per_word == 1.0
        assert DnnLifePolicy(word_bits=8, words_per_enable=8,
                             seed=0).metadata_bits_per_word == pytest.approx(1 / 8)

    def test_group_granularity_shares_enable(self, rng):
        policy = DnnLifePolicy(word_bits=8, words_per_enable=4, seed=0)
        words = _random_words(rng, 16, 8)
        _, enables = policy.encode_block(words, 0)
        groups = enables.reshape(4, 4)
        assert np.all(groups == groups[:, :1])

    def test_unbiased_inversion_rate_near_half(self, rng):
        policy = DnnLifePolicy(word_bits=8, trbg_bias=0.5, seed=0)
        _, enables = policy.encode_block(_random_words(rng, 20000, 8), 0)
        assert abs(enables.mean() - 0.5) < 0.02

    def test_biased_without_balancing_stays_biased(self, rng):
        policy = DnnLifePolicy(word_bits=8, trbg_bias=0.8, bias_balancing=False, seed=0)
        _, enables = policy.encode_block(_random_words(rng, 20000, 8), 0)
        assert abs(enables.mean() - 0.8) < 0.02

    def test_bias_balancing_restores_half_across_blocks(self, rng):
        policy = DnnLifePolicy(word_bits=8, trbg_bias=0.8, bias_balancing=True,
                               balance_register_bits=2, seed=0)
        means = []
        for block in range(64):
            _, enables = policy.encode_block(_random_words(rng, 100, 8), block)
            means.append(enables.mean())
        assert abs(np.mean(means) - 0.5) < 0.05

    def test_properties(self):
        policy = DnnLifePolicy(word_bits=8, trbg_bias=0.7, bias_balancing=True, seed=0)
        assert policy.trbg_bias == 0.7
        assert policy.effective_bias == 0.5
        assert policy.has_bias_balancing
        assert "with bias balancing" in policy.display_name

    def test_describe_includes_controller(self):
        description = DnnLifePolicy(word_bits=8, seed=0).describe()
        assert description["policy"] == "dnn_life"
        assert "trbg_bias" in description


class TestPolicyFactoryAndSuite:
    def test_make_policy_all_names(self):
        for name, expected in (("none", NoMitigationPolicy),
                               ("inversion", PeriodicInversionPolicy),
                               ("inversion_per_location", PeriodicInversionPolicy),
                               ("barrel_shifter", BarrelShifterPolicy),
                               ("dnn_life", DnnLifePolicy)):
            assert isinstance(make_policy(name, word_bits=8, seed=0), expected)

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("magic", word_bits=8)

    def test_default_suite_matches_fig9_columns(self):
        suite = default_policy_suite(word_bits=8, seed=0)
        assert len(suite) == 6
        assert isinstance(suite[0], NoMitigationPolicy)
        assert isinstance(suite[1], PeriodicInversionPolicy)
        assert isinstance(suite[2], BarrelShifterPolicy)
        assert all(isinstance(policy, DnnLifePolicy) for policy in suite[3:])
        biases = [policy.trbg_bias for policy in suite[3:]]
        balancing = [policy.has_bias_balancing for policy in suite[3:]]
        assert biases == [0.5, 0.7, 0.7]
        assert balancing == [False, False, True]

    def test_all_policies_roundtrip_on_random_blocks(self, rng):
        for policy in default_policy_suite(word_bits=32, seed=1):
            words = _random_words(rng, 64, 32)
            encoded, metadata = policy.encode_block(words, 0)
            assert np.array_equal(policy.decode_block(encoded, metadata), words)

    def test_encoded_bits_stay_within_word_width(self, rng):
        for policy in default_policy_suite(word_bits=8, seed=1):
            encoded, _ = policy.encode_block(_random_words(rng, 64, 8), 0)
            assert int(encoded.max()) < 256
            assert unpack_bits(encoded, 8).shape == (64, 8)
