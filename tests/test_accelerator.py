"""Tests for repro.accelerator (configs, dataflow, scheduler, PE array)."""

import numpy as np
import pytest

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import TABLE_I_CONFIGS, baseline_config, tpu_like_config
from repro.accelerator.dataflow import (
    count_layer_blocks,
    extract_block_weights,
    iter_block_slices,
    iter_filter_sets,
    iter_layer_blocks,
    layer_filter_shape,
    select_tile_shape,
    validate_block_coverage,
)
from repro.accelerator.pe_array import AccumulationUnit, PeArray, ProcessingElement
from repro.accelerator.scheduler import CachedWeightStream, WeightStreamScheduler, stream_to_trace
from repro.accelerator.tpu import TpuLikeNpu
from repro.memory.sram import SramArray
from repro.utils.units import KB, MB


class TestTableIConfigs:
    def test_baseline_matches_table1(self):
        config = baseline_config()
        assert config.weight_memory_bytes == 512 * KB
        assert config.activation_memory_bytes == 4 * MB
        assert config.num_pes == 8
        assert config.multipliers_per_pe == 8
        assert config.parallel_filters == 8

    def test_tpu_matches_table1(self):
        config = tpu_like_config()
        assert config.weight_memory_bytes == 256 * KB
        assert config.activation_memory_bytes == 24 * MB
        assert config.parallel_filters == 256
        assert config.macs_per_cycle == 256 * 256
        assert config.weight_fifo_depth_tiles == 4

    def test_tpu_tile_holds_full_mac_array_weights(self):
        config = tpu_like_config()
        assert config.weights_per_tile(8) == 256 * 256

    def test_registry(self):
        assert set(TABLE_I_CONFIGS) == {"baseline", "tpu_like_npu"}

    def test_geometry_derivation(self):
        geometry = baseline_config().weight_memory_geometry(32)
        assert geometry.rows == 131072

    def test_invalid_config_rejected(self):
        from repro.accelerator.config import AcceleratorConfig

        with pytest.raises(ValueError):
            AcceleratorConfig(name="bad", weight_memory_bytes=0,
                              activation_memory_bytes=1, num_pes=1, multipliers_per_pe=1)


class TestDataflow:
    def test_filter_sets_cover_all_filters(self):
        sets = list(iter_filter_sets(20, 8))
        assert [s.size for s in sets] == [8, 8, 4]
        covered = [i for s in sets for i in s.filter_indices]
        assert covered == list(range(20))

    def test_tile_shape_full_spatial(self):
        tile = select_tile_shape((16, 5, 5), capacity_per_filter=100)
        assert (tile.rows, tile.cols) == (5, 5)
        assert tile.channels == 4
        assert tile.weights_per_filter <= 100

    def test_tile_shape_splits_rows_when_needed(self):
        tile = select_tile_shape((16, 5, 5), capacity_per_filter=12)
        assert tile.channels == 1 and tile.cols == 5 and tile.rows == 2

    def test_tile_shape_splits_cols_last_resort(self):
        tile = select_tile_shape((16, 5, 5), capacity_per_filter=3)
        assert (tile.channels, tile.rows, tile.cols) == (1, 1, 3)

    def test_layer_filter_shape(self, tiny_network):
        assert layer_filter_shape(tiny_network.layer("conv2")) == (4, 3, 3)
        assert layer_filter_shape(tiny_network.layer("fc1")) == (968, 1, 1)

    def test_block_slices_cover_every_weight_exactly_once(self, tiny_network):
        for layer in tiny_network.weight_layers():
            blocks = list(iter_block_slices(layer, parallel_filters=4, block_capacity_words=256))
            validate_block_coverage(layer, blocks)

    def test_block_sizes_respect_capacity(self, tiny_network):
        for layer in tiny_network.weight_layers():
            for block in iter_block_slices(layer, 4, 256):
                assert block.total_weights <= 256

    def test_extract_block_weights_values(self, tiny_network):
        layer = tiny_network.layer("conv1")
        blocks = list(iter_block_slices(layer, 4, 256))
        extracted = extract_block_weights(layer, blocks[0])
        assert extracted.size == blocks[0].total_weights
        # First block contains the leading filters' full kernels.
        assert np.allclose(extracted[:9], np.asarray(layer.weights)[0].reshape(-1))

    def test_iter_layer_blocks_total_weights(self, tiny_network):
        layer = tiny_network.layer("fc1")
        total = sum(block.size for block in iter_layer_blocks(layer, 4, 256))
        assert total == layer.weight_count

    def test_count_layer_blocks(self, tiny_network):
        layer = tiny_network.layer("conv2")
        assert count_layer_blocks(layer, 4, 256) == len(list(iter_block_slices(layer, 4, 256)))

    def test_capacity_too_small_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            list(iter_block_slices(tiny_network.layer("conv1"), parallel_filters=4,
                                   block_capacity_words=2))


class TestScheduler:
    def test_num_blocks_matches_weight_count(self, tiny_scheduler, tiny_network):
        expected = int(np.ceil(tiny_network.weight_count / tiny_scheduler.words_per_block))
        assert tiny_scheduler.num_blocks == expected

    def test_blocks_are_memory_sized(self, tiny_scheduler):
        blocks = list(tiny_scheduler.iter_blocks())
        assert len(blocks) == tiny_scheduler.num_blocks
        assert all(block.num_words == tiny_scheduler.words_per_block for block in blocks)

    def test_block_indices_sequential(self, tiny_scheduler):
        indices = [block.index for block in tiny_scheduler.iter_blocks()]
        assert indices == list(range(tiny_scheduler.num_blocks))

    def test_words_fit_format(self, tiny_scheduler):
        for block in tiny_scheduler.iter_blocks():
            assert int(block.words.max()) < 2 ** tiny_scheduler.geometry.word_bits

    def test_stream_preserves_all_weight_words(self, tiny_network, tiny_accelerator):
        # The multiset of streamed (non-padding) words equals the multiset of
        # quantized network weights.
        scheduler = tiny_accelerator.build_scheduler(tiny_network, "int8_symmetric")
        streamed = np.concatenate([block.words for block in scheduler.iter_blocks()])
        padding = scheduler.num_blocks * scheduler.words_per_block - tiny_network.weight_count
        from repro.quantization.formats import get_format

        expected_counts = np.zeros(256, dtype=np.int64)
        for layer in tiny_network.weight_layers():
            words = get_format("int8_symmetric").to_words(np.asarray(layer.weights))
            expected_counts += np.bincount(words.astype(np.int64), minlength=256)
        expected_counts[0] += padding
        assert np.array_equal(np.bincount(streamed.astype(np.int64), minlength=256),
                              expected_counts)

    def test_fifo_regions_round_robin(self, tiny_fifo_scheduler):
        regions = [block.region for block in tiny_fifo_scheduler.iter_blocks()]
        assert regions == [i % 4 for i in range(len(regions))]

    def test_fp32_and_int8_block_counts_differ(self, tiny_scheduler, tiny_fp32_scheduler):
        assert tiny_fp32_scheduler.num_blocks == 4 * tiny_scheduler.num_blocks

    def test_format_word_width_must_match_geometry(self, tiny_network, tiny_accelerator):
        geometry = tiny_accelerator.weight_memory_geometry("float32")
        with pytest.raises(ValueError):
            WeightStreamScheduler(tiny_network, "int8_symmetric", geometry, parallel_filters=4)

    def test_describe(self, tiny_scheduler):
        description = tiny_scheduler.describe()
        assert description["num_blocks_per_inference"] == tiny_scheduler.num_blocks
        assert description["data_format"] == "int8_symmetric"

    def test_cached_stream_equivalent(self, tiny_scheduler):
        cached = CachedWeightStream(tiny_scheduler)
        assert cached.num_blocks == tiny_scheduler.num_blocks
        original = list(tiny_scheduler.iter_blocks())
        for cached_block, original_block in zip(cached.iter_blocks(), original):
            assert np.array_equal(cached_block.words, original_block.words)
        # The cache can be iterated multiple times.
        assert sum(1 for _ in cached.iter_blocks()) == cached.num_blocks

    def test_stream_to_trace_and_replay(self, tiny_scheduler):
        trace = stream_to_trace(tiny_scheduler, num_inferences=2)
        assert len(trace) == 2 * tiny_scheduler.num_blocks
        array = trace.replay(SramArray(tiny_scheduler.geometry))
        duty = array.duty_cycles()
        assert np.all((duty >= 0) & (duty <= 1))

    def test_blocks_per_region_sums_to_num_blocks(self, tiny_fifo_scheduler):
        assert tiny_fifo_scheduler.blocks_per_region.sum() == tiny_fifo_scheduler.num_blocks


class TestAccelerators:
    def test_baseline_scheduler_word_width(self, mnist_network):
        accelerator = BaselineAccelerator()
        scheduler = accelerator.build_scheduler(mnist_network, "float32")
        assert scheduler.geometry.word_bits == 32
        assert scheduler.parallel_filters == 8

    def test_tpu_scheduler_uses_fifo(self, mnist_network):
        accelerator = TpuLikeNpu()
        scheduler = accelerator.build_scheduler(mnist_network, "int8_symmetric")
        assert scheduler.fifo_depth_tiles == 4
        assert scheduler.words_per_block == 65536
        assert scheduler.num_blocks == 4

    def test_describe_round_trip(self):
        assert BaselineAccelerator().describe()["name"] == "baseline"
        assert TpuLikeNpu().describe()["name"] == "tpu_like_npu"

    def test_energy_model_access(self):
        model = BaselineAccelerator().weight_memory_energy_model("int8_symmetric")
        assert model.word_bits == 8


class TestPeArray:
    def test_processing_element_dot_product(self, rng):
        pe = ProcessingElement(num_multipliers=8)
        activations = rng.normal(size=8)
        weights = rng.normal(size=8)
        assert pe.multiply_accumulate(activations, weights) == pytest.approx(
            float(np.dot(activations, weights)))

    def test_processing_element_rejects_oversize(self, rng):
        with pytest.raises(ValueError):
            ProcessingElement(4).multiply_accumulate(rng.normal(size=8), rng.normal(size=8))

    def test_adder_tree_depth(self):
        assert ProcessingElement(8).adder_tree_depth == 3

    def test_accumulation_unit(self):
        unit = AccumulationUnit(num_lanes=4)
        unit.accumulate(np.ones(4))
        unit.accumulate(np.ones(4) * 2)
        assert np.allclose(unit.flush(), 3.0)
        assert np.allclose(unit.partial_sums, 0.0)

    def test_pe_array_matches_matrix_product(self, rng):
        array = PeArray(num_pes=4, multipliers_per_pe=8)
        activations = rng.normal(size=20)
        weights = rng.normal(size=(4, 20))
        outputs = array.compute_dot_products(activations, weights)
        assert np.allclose(outputs, weights @ activations)
        assert array.cycles == array.cycles_for_dot_product(20)

    def test_cycles_for_dot_product(self):
        array = PeArray(num_pes=2, multipliers_per_pe=8)
        assert array.cycles_for_dot_product(16) == 2
        assert array.cycles_for_dot_product(17) == 3

    def test_baseline_matches_table1_peak_rate(self):
        config = baseline_config()
        array = PeArray(config.num_pes, config.multipliers_per_pe)
        assert array.num_pes * array.multipliers_per_pe == config.macs_per_cycle
