"""Tests for the multi-phase lifetime scenario engine (``repro.scenario``).

Covers the acceptance criteria of the scenario refactor:

* the packed scenario driver matches the explicit phase-replay engine
  bit-for-bit for deterministic policies across multiple multi-phase
  scenarios (model swap + temperature change), with and without wear
  levelers;
* a degenerate single-phase scenario reproduces the classic
  :class:`~repro.core.simulation.AgingSimulator` results exactly;
* leveler remap state persists across phase boundaries while policy state
  resets;
* the effective-stress aggregation, the phase-spec mini-language, the
  ``DnnLife`` integration and the registered ``scenario`` experiment.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.aging.lifetime import LifetimeEstimator
from repro.aging.nbti import ReactionDiffusionSnmModel
from repro.aging.stress import (
    ArrheniusTimeScaling,
    PhaseStress,
    StressTimeline,
    aggregate_stress,
    scaling_for_model,
)
from repro.core.policies import make_policy
from repro.core.simulation import AgingSimulator
from repro.experiments.common import ExperimentScale
from repro.leveling import make_leveler
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights
from repro.scenario import (
    ExplicitScenarioSimulator,
    LifetimeScenario,
    Phase,
    ScenarioAgingSimulator,
    ScenarioResult,
    parse_scenario_spec,
)
from repro.scenario.driver import scenario_stream_factory
from repro.utils.units import KB

#: Every deterministic policy appears in at least one phase across the two
#: cross-checked timelines.
MODEL_SWAP_SPEC = ("custom_mnist:int8:inversion:4@85C,"
                   "lenet5:int8:none:4@45C,"
                   "lenet5:int8:inversion_per_location:3@85C")
DUTY_CYCLE_SPEC = ("custom_mnist:int8:barrel_shifter:5@85C,"
                   "idle:3@45C,custom_mnist:int8:inversion:4@25C")


def small_factory(memory_kb=4, fifo_depth_tiles=4, seed=0):
    """Stream factory over a tiny 4-tile FIFO memory (explicit-simulable)."""
    config = replace(baseline_config(), name="test_scenario",
                     weight_memory_bytes=memory_kb * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    scale = ExperimentScale(num_inferences=10, max_weights_per_layer=10_000)
    return scenario_stream_factory(BaselineAccelerator(config=config),
                                   scale=scale, seed=seed)


@pytest.fixture(scope="module")
def factory():
    return small_factory()


@pytest.fixture(scope="module")
def geometry(factory):
    return factory(Phase.active("custom_mnist", "int8", "none", 1)).geometry


# --------------------------------------------------------------------------- #
# Phase-spec mini-language
# --------------------------------------------------------------------------- #
class TestSpecParser:
    def test_active_token_with_alias_and_temperature(self):
        (phase,) = parse_scenario_spec("lenet5:int8:dnn_life:1000@85C")
        assert not phase.is_idle
        assert phase.network == "lenet5"
        assert phase.data_format == "int8_symmetric"  # alias resolved
        assert phase.policy == "dnn_life"
        assert phase.duration == 1000
        assert phase.temperature_c == 85.0

    def test_temperature_defaults_and_spellings(self):
        default, lower, bare = parse_scenario_spec(
            "lenet5:int8:none:5,lenet5:int8:none:5@45c,lenet5:int8:none:5@45")
        assert default.temperature_c == 85.0
        assert lower.temperature_c == 45.0
        assert bare.temperature_c == 45.0

    def test_idle_token(self):
        phases = parse_scenario_spec("lenet5:int8:none:10,idle:500@45C")
        assert phases[1].is_idle
        assert phases[1].duration == 500
        assert phases[1].temperature_c == 45.0

    def test_spec_round_trips_through_to_spec(self):
        scenario = LifetimeScenario.from_spec(MODEL_SWAP_SPEC)
        again = LifetimeScenario.from_spec(scenario.to_spec())
        assert again.phases == scenario.phases

    def test_description_round_trip(self):
        scenario = LifetimeScenario.from_spec(DUTY_CYCLE_SPEC, years=3.5,
                                              reference_temperature_c=60.0)
        rebuilt = LifetimeScenario.from_description(scenario.describe())
        assert rebuilt.phases == scenario.phases
        assert rebuilt.years == 3.5
        assert rebuilt.reference_temperature_c == 60.0

    @pytest.mark.parametrize("spec,fragment", [
        ("", "spec is empty"),
        ("lenet5:int8:none", "expected"),
        ("bogus:int8:none:5", "unknown network 'bogus'"),
        ("lenet5:int13:none:5", "unknown data format 'int13'"),
        ("lenet5:int8:bogus:5", "unknown policy 'bogus'"),
        ("lenet5:int8:none:0", "duration must be > 0"),
        ("lenet5:int8:none:-3", "duration must be > 0"),
        ("lenet5:int8:none:ten", "invalid duration"),
        ("lenet5:int8:none:5@cold", "invalid temperature"),
        ("idle:5:5", "expected 'idle:DURATION"),
    ])
    def test_one_line_errors(self, spec, fragment):
        with pytest.raises(ValueError) as excinfo:
            parse_scenario_spec(spec)
        message = str(excinfo.value)
        assert fragment in message
        assert "\n" not in message

    def test_scenario_rejects_leading_idle(self):
        with pytest.raises(ValueError, match="cannot start with an idle phase"):
            LifetimeScenario.from_spec("idle:5,lenet5:int8:none:5")

    def test_phase_years_are_duration_proportional(self):
        scenario = LifetimeScenario.from_spec(
            "lenet5:int8:none:6,idle:2,lenet5:int8:none:4", years=6.0)
        years = scenario.phase_years()
        assert years == pytest.approx([3.0, 1.0, 2.0])
        assert sum(years) == pytest.approx(scenario.years)


# --------------------------------------------------------------------------- #
# Effective-stress aggregation
# --------------------------------------------------------------------------- #
class TestStressAggregation:
    def test_reference_temperature_factor_is_exactly_one(self):
        scaling = ArrheniusTimeScaling()
        assert scaling.time_factor(scaling.reference_temperature_c) == 1.0

    def test_hotter_counts_more_cooler_counts_less(self):
        scaling = ArrheniusTimeScaling()
        assert scaling.time_factor(105.0) > 1.0
        assert scaling.time_factor(45.0) < 0.2

    def test_single_phase_is_bit_exact(self):
        duty = np.linspace(0.0, 1.0, 17)
        effective, years = aggregate_stress(
            [PhaseStress(duty, years=7.0, temperature_c=85.0)])
        assert np.array_equal(effective, duty)
        assert years == 7.0

    def test_complement_commutes_with_aggregation(self):
        rng = np.random.default_rng(0)
        phases = [PhaseStress(rng.random(32), years=2.0, temperature_c=85.0),
                  PhaseStress(rng.random(32), years=5.0, temperature_c=45.0)]
        complemented = [PhaseStress(1.0 - phase.duty, phase.years,
                                    phase.temperature_c) for phase in phases]
        duty, _ = aggregate_stress(phases)
        duty_complement, _ = aggregate_stress(complemented)
        assert np.allclose(duty_complement, 1.0 - duty)

    def test_equal_temperature_blend_is_time_weighted_mean(self):
        low = PhaseStress(np.full(4, 0.2), years=1.0, temperature_c=85.0)
        high = PhaseStress(np.full(4, 0.8), years=3.0, temperature_c=85.0)
        duty, years = aggregate_stress([low, high])
        assert years == pytest.approx(4.0)
        assert duty == pytest.approx(np.full(4, (0.2 + 3 * 0.8) / 4.0))

    def test_shape_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            aggregate_stress([PhaseStress(np.zeros(4), 1.0),
                              PhaseStress(np.zeros(5), 1.0)])

    def test_empty_timeline_is_rejected(self):
        with pytest.raises(ValueError):
            aggregate_stress([])

    def test_timeline_accumulator(self):
        timeline = StressTimeline()
        timeline.add(np.full(3, 0.5), years=2.0)
        timeline.add(np.full(3, 1.0), years=2.0, temperature_c=45.0)
        duty, years = timeline.effective()
        assert timeline.wall_years == pytest.approx(4.0)
        assert years < 4.0  # the cool phase contributes less stress-time
        assert np.all((duty > 0.5) & (duty < 1.0))

    def test_scaling_for_reaction_diffusion_model_uses_device(self):
        model = ReactionDiffusionSnmModel()
        scaling = scaling_for_model(model)
        assert scaling.activation_energy_ev == model.device.activation_energy_ev
        assert scaling.reference_temperature_c == pytest.approx(85.0)


# --------------------------------------------------------------------------- #
# Engine cross-checks (the acceptance criteria)
# --------------------------------------------------------------------------- #
def _levelers(geometry):
    return {
        "none": lambda: None,
        "rotation": lambda: make_leveler("rotation", geometry, 4, period=3),
        "start_gap": lambda: make_leveler("start_gap", geometry, 4, interval=2),
        "wear_swap": lambda: make_leveler("wear_swap", geometry, 4, interval=2,
                                          swap_fraction=0.25),
    }


class TestEngineEquivalence:
    @pytest.mark.parametrize("spec", [MODEL_SWAP_SPEC, DUTY_CYCLE_SPEC])
    @pytest.mark.parametrize("leveler_name", ["none", "rotation", "start_gap",
                                              "wear_swap"])
    def test_packed_matches_explicit_bit_for_bit(self, factory, geometry,
                                                 spec, leveler_name):
        scenario = LifetimeScenario.from_spec(spec)
        build = _levelers(geometry)[leveler_name]
        packed = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0, leveler=build()).run()
        explicit = ExplicitScenarioSimulator(scenario, stream_factory=factory,
                                             seed=0, leveler=build()).run()
        assert np.array_equal(packed.effective.duty_cycles,
                              explicit.effective.duty_cycles)
        for fast, exact in zip(packed.phase_stress, explicit.phase_stress):
            assert np.array_equal(fast.duty, exact.duty)
        assert packed.effective_years == explicit.effective_years

    @pytest.mark.parametrize("policy", ["none", "inversion",
                                        "inversion_per_location",
                                        "barrel_shifter"])
    def test_degenerate_single_phase_reproduces_aging_simulator(self, factory,
                                                                policy):
        scenario = LifetimeScenario.from_spec(f"custom_mnist:int8:{policy}:5")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        stream = factory(scenario.phases[0])
        classic = AgingSimulator(stream, make_policy(policy, 8, seed=0),
                                 num_inferences=5, seed=0).run()
        assert np.array_equal(result.effective.duty_cycles, classic.duty_cycles)
        assert result.effective.years == 7.0
        assert result.effective.num_inferences == classic.num_inferences
        assert result.effective.num_blocks == classic.num_blocks
        assert (result.effective.summary()["duty_cycle"]
                == classic.summary()["duty_cycle"])

    def test_degenerate_single_phase_with_leveler(self, factory, geometry):
        scenario = LifetimeScenario.from_spec("custom_mnist:int8:inversion:6")
        result = ScenarioAgingSimulator(
            scenario, stream_factory=factory, seed=0,
            leveler=make_leveler("start_gap", geometry, 4, interval=2)).run()
        stream = factory(scenario.phases[0])
        classic = AgingSimulator(
            stream, make_policy("inversion", 8, seed=0), num_inferences=6,
            seed=0,
            leveler=make_leveler("start_gap", geometry, 4, interval=2)).run()
        assert np.array_equal(result.effective.duty_cycles, classic.duty_cycles)

    def test_stochastic_policy_runs_on_both_engines(self, factory):
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:dnn_life:3,lenet5:int8:dnn_life:3")
        for simulator_cls in (ScenarioAgingSimulator, ExplicitScenarioSimulator):
            result = simulator_cls(scenario, stream_factory=factory, seed=0).run()
            duty = result.effective.duty_cycles
            assert np.all((duty >= 0.0) & (duty <= 1.0))

    def test_seed_reproducibility(self, factory):
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:dnn_life:3,lenet5:int8:dnn_life:3")
        first = ScenarioAgingSimulator(scenario, stream_factory=factory, seed=7).run()
        second = ScenarioAgingSimulator(scenario, stream_factory=factory, seed=7).run()
        other = ScenarioAgingSimulator(scenario, stream_factory=factory, seed=8).run()
        assert np.array_equal(first.effective.duty_cycles,
                              second.effective.duty_cycles)
        assert not np.array_equal(first.effective.duty_cycles,
                                  other.effective.duty_cycles)


class TestScenarioSemantics:
    def test_leveler_state_persists_across_phase_boundaries(self, factory,
                                                            geometry):
        # With a one-epoch start-gap shift, the second phase of a composite
        # timeline starts from the offset the first phase accumulated; a
        # fresh single-phase run of the same workload starts from identity.
        composite = LifetimeScenario.from_spec(
            "custom_mnist:int8:none:4,lenet5:int8:none:4")
        alone = LifetimeScenario.from_spec("lenet5:int8:none:4")
        leveler = make_leveler("start_gap", geometry, 4, interval=1)
        composite_result = ScenarioAgingSimulator(
            composite, stream_factory=factory, seed=0, leveler=leveler).run()
        alone_result = ScenarioAgingSimulator(
            alone, stream_factory=factory, seed=0,
            leveler=make_leveler("start_gap", geometry, 4, interval=1)).run()
        assert not np.array_equal(composite_result.phase_stress[1].duty,
                                  alone_result.phase_stress[0].duty)

    def test_policy_state_resets_at_phase_boundaries(self, factory):
        # Splitting an even-length inversion run in two must reproduce the
        # concatenation of two fresh runs, not one continued counter stream:
        # each 4-epoch phase starts at parity 0.
        split = LifetimeScenario.from_spec(
            "custom_mnist:int8:inversion:4,custom_mnist:int8:inversion:4")
        single = LifetimeScenario.from_spec("custom_mnist:int8:inversion:4")
        split_result = ScenarioAgingSimulator(split, stream_factory=factory,
                                              seed=0).run()
        single_result = ScenarioAgingSimulator(single, stream_factory=factory,
                                               seed=0).run()
        for stress in split_result.phase_stress:
            assert np.array_equal(stress.duty,
                                  single_result.phase_stress[0].duty)

    def test_idle_phase_holds_previous_duty_without_writes(self, factory):
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:inversion:4,idle:6@45C")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        active, idle = result.phase_stress
        assert np.array_equal(idle.duty, active.duty)
        assert result.phase_results[1] is None

    def test_idle_at_same_temperature_preserves_effective_duty(self, factory):
        active_only = LifetimeScenario.from_spec("custom_mnist:int8:none:4")
        with_idle = LifetimeScenario.from_spec(
            "custom_mnist:int8:none:4,idle:4@85C")
        base = ScenarioAgingSimulator(active_only, stream_factory=factory,
                                      seed=0).run()
        idled = ScenarioAgingSimulator(with_idle, stream_factory=factory,
                                       seed=0).run()
        # Idle retention at the same duty and temperature changes nothing
        # about the effective duty-cycle (it holds the same expected values).
        assert np.allclose(idled.effective.duty_cycles,
                           base.effective.duty_cycles)
        assert idled.effective_years == pytest.approx(base.effective_years)

    def test_cool_phases_shrink_effective_years(self, factory):
        hot = LifetimeScenario.from_spec("custom_mnist:int8:none:4@85C")
        cool = LifetimeScenario.from_spec("custom_mnist:int8:none:4@45C")
        hot_result = ScenarioAgingSimulator(hot, stream_factory=factory, seed=0).run()
        cool_result = ScenarioAgingSimulator(cool, stream_factory=factory, seed=0).run()
        assert cool_result.effective_years < hot_result.effective_years
        assert hot_result.effective_years == pytest.approx(7.0)

    def test_mixed_word_widths_are_rejected_at_construction(self):
        with pytest.raises(ValueError, match="share one word width"):
            LifetimeScenario.from_spec(
                "custom_mnist:int8:none:2,custom_mnist:float32:none:2")

    def test_mixed_geometry_streams_are_rejected_by_the_engine(self, factory):
        # The engine-level geometry backstop still guards exotic factories:
        # same spec-level word width, different per-phase stream geometry.
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:none:2,lenet5:int8:none:2")
        other = small_factory(memory_kb=8)

        def mixed_factory(phase):
            return (factory if phase.network == "custom_mnist" else other)(phase)

        with pytest.raises(ValueError, match="geometry"):
            ScenarioAgingSimulator(scenario, stream_factory=mixed_factory,
                                   seed=0).run()

    def test_leveler_row_mismatch_is_rejected(self, factory):
        from repro.memory.geometry import MemoryGeometry

        scenario = LifetimeScenario.from_spec("custom_mnist:int8:none:2")
        wrong = make_leveler("rotation", MemoryGeometry(capacity_bytes=2 * KB,
                                                        word_bits=8), 1)
        with pytest.raises(ValueError, match="leveler covers"):
            ScenarioAgingSimulator(scenario, stream_factory=factory, seed=0,
                                   leveler=wrong).run()


# --------------------------------------------------------------------------- #
# Result container
# --------------------------------------------------------------------------- #
class TestScenarioResult:
    @pytest.fixture(scope="class")
    def result(self):
        factory = small_factory()
        scenario = LifetimeScenario.from_spec(DUTY_CYCLE_SPEC)
        return ScenarioAgingSimulator(scenario, stream_factory=factory,
                                      seed=0).run()

    def test_summary_structure(self, result):
        summary = result.summary()
        assert summary["engine"] == "packed"
        assert summary["wall_years"] == pytest.approx(7.0)
        assert summary["effective_years"] == pytest.approx(result.effective.years)
        assert len(summary["phases"]) == 3
        kinds = [row["kind"] for row in summary["phases"]]
        assert kinds == ["active", "idle", "active"]
        assert summary["effective"]["policy"] == "scenario"

    def test_payload_round_trip(self, result):
        import json

        payload = json.loads(json.dumps(result.to_payload()))
        rebuilt = ScenarioResult.from_payload(payload)
        assert np.array_equal(rebuilt.effective.duty_cycles,
                              result.effective.duty_cycles)
        assert rebuilt.effective.years == result.effective.years
        assert rebuilt.wall_years == result.wall_years
        assert rebuilt.scaling == result.scaling
        for original, restored in zip(result.phase_stress, rebuilt.phase_stress):
            assert np.array_equal(original.duty, restored.duty)
            assert original.years == restored.years
            assert original.temperature_c == restored.temperature_c

    def test_effective_result_feeds_existing_consumers(self, result):
        percentages, edges, labels = result.effective.histogram()
        assert pytest.approx(sum(percentages)) == 100.0
        assert len(labels) == len(percentages)
        stats = result.effective.duty_cycle_statistics()
        assert 0.0 <= stats["mean"] <= 1.0


# --------------------------------------------------------------------------- #
# Lifetime estimation over phase timelines
# --------------------------------------------------------------------------- #
class TestLifetimePhases:
    def test_degenerate_matches_single_stream_estimate(self):
        duty = np.linspace(0.1, 0.9, 9)
        estimator = LifetimeEstimator()
        classic = estimator.memory_lifetime_years(duty)
        phased = estimator.memory_lifetime_years_phases(
            [PhaseStress(duty, years=7.0, temperature_c=85.0)])
        assert phased == pytest.approx(classic)

    def test_cool_corner_extends_wall_clock_lifetime(self):
        duty = np.linspace(0.1, 0.9, 9)
        estimator = LifetimeEstimator()
        hot = estimator.memory_lifetime_years_phases(
            [PhaseStress(duty, years=7.0, temperature_c=85.0)])
        mixed = estimator.memory_lifetime_years_phases(
            [PhaseStress(duty, years=3.5, temperature_c=85.0),
             PhaseStress(duty, years=3.5, temperature_c=45.0)])
        assert mixed > hot


# --------------------------------------------------------------------------- #
# DnnLife framework integration
# --------------------------------------------------------------------------- #
class TestDnnLifeScenario:
    @pytest.fixture()
    def framework(self):
        from repro.core.framework import DnnLife

        config = replace(baseline_config(), name="test_dnnlife_scenario",
                         weight_memory_bytes=4 * KB,
                         weight_fifo_depth_tiles=4)
        network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:inversion:3,idle:2@45C,custom_mnist:int8:none:3@45C")
        return DnnLife(network, accelerator=BaselineAccelerator(config=config),
                       num_inferences=3, seed=0, scenario=scenario)

    def test_simulate_routes_to_scenario(self, framework):
        result = framework.simulate()
        assert result.policy_name == "scenario"
        assert "scenario" in result.policy_description

    def test_simulate_with_policy_is_rejected(self, framework):
        with pytest.raises(ValueError, match="carry their own"):
            framework.simulate("inversion")

    def test_explicit_engine_agrees(self, framework):
        packed = framework.simulate_scenario()
        explicit = framework.simulate_scenario(engine="explicit")
        assert np.array_equal(packed.effective.duty_cycles,
                              explicit.effective.duty_cycles)

    def test_unknown_engine_rejected(self, framework):
        with pytest.raises(ValueError, match="unknown scenario engine"):
            framework.simulate_scenario(engine="warp")

    def test_describe_includes_scenario(self, framework):
        assert framework.describe()["scenario"]["num_phases"] == 3

    def test_missing_scenario_is_rejected(self):
        from repro.core.framework import DnnLife

        network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
        framework = DnnLife(network, num_inferences=2)
        with pytest.raises(ValueError, match="no scenario"):
            framework.simulate_scenario()


# --------------------------------------------------------------------------- #
# Registered experiment
# --------------------------------------------------------------------------- #
class TestScenarioExperiment:
    SMALL = ("custom_mnist:int8:inversion:3@85C,idle:2@45C,"
             "custom_mnist:int8:none:3@45C")

    def test_registered_with_affinity(self):
        from repro.orchestration import REGISTRY, load_all_experiments

        load_all_experiments()
        spec = REGISTRY.get("scenario")
        assert "sweep" in spec.tags
        assert set(spec.affinity) == {"weight_memory_kb", "fifo_depth_tiles",
                                      "quick", "seed"}

    def test_run_experiment_payload(self):
        from repro.orchestration import run_experiment

        run = run_experiment("scenario", {"spec": self.SMALL,
                                          "weight_memory_kb": 4,
                                          "fifo_depth_tiles": 4})
        payload = run.payload
        assert payload["workload"]["spec"] == self.SMALL
        assert len(payload["phases"]) == 3
        assert payload["effective"]["acceleration"] < 1.0  # cool phases
        assert payload["lifetime"]["memory_lifetime_years"] > 0
        # cool corners must extend lifetime over the single-corner estimate
        assert (payload["lifetime"]["memory_lifetime_years"]
                > payload["lifetime"]["single_corner_lifetime_years"])

    def test_renderer_output(self):
        from repro.orchestration import render_experiment, run_experiment

        run = run_experiment("scenario", {"spec": self.SMALL,
                                          "weight_memory_kb": 4,
                                          "fifo_depth_tiles": 4})
        text = render_experiment(run)
        assert "effective stress histogram" in text
        assert "memory lifetime" in text
        assert "idle" in text

    def test_schema_rejects_bad_spec_and_durations(self):
        from repro.orchestration import REGISTRY, load_all_experiments

        load_all_experiments()
        spec = REGISTRY.get("scenario")
        with pytest.raises(ValueError, match="unknown network"):
            spec.resolve({"spec": "bogus:int8:none:5"})
        with pytest.raises(ValueError, match="duration must be > 0"):
            spec.resolve({"spec": "lenet5:int8:none:0"})
        with pytest.raises(ValueError, match="must be > 0"):
            spec.resolve({"years": -1.0})

    def test_leveling_variant_runs(self):
        from repro.orchestration import run_experiment

        run = run_experiment("scenario", {"spec": self.SMALL,
                                          "weight_memory_kb": 4,
                                          "fifo_depth_tiles": 4,
                                          "leveling": "wear_swap"})
        assert run.payload["leveler"]["leveler"] == "wear_swap"


class TestSeedAndScaleHandling:
    def test_factory_seed_distinguishes_seed_sequences(self):
        from repro.scenario.driver import _factory_seed

        first = _factory_seed(np.random.SeedSequence(5))
        second = _factory_seed(np.random.SeedSequence(7))
        assert first != second
        assert first == _factory_seed(np.random.SeedSequence(5))  # pure
        assert _factory_seed(np.int64(9)) == 9
        assert _factory_seed(None) == 0

    def test_simulate_scenario_accepts_explicit_scale(self):
        from repro.core.framework import DnnLife
        from repro.experiments.common import ExperimentScale

        config = replace(baseline_config(), name="test_scenario_scale",
                         weight_memory_bytes=4 * KB, weight_fifo_depth_tiles=4)
        network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
        framework = DnnLife(network, accelerator=BaselineAccelerator(config=config),
                            num_inferences=2,
                            scenario=LifetimeScenario.from_spec(
                                "custom_mnist:int8:none:2"))
        capped = framework.simulate_scenario(
            scale=ExperimentScale(num_inferences=2, max_weights_per_layer=1_000))
        full = framework.simulate_scenario(
            scale=ExperimentScale(num_inferences=2, max_weights_per_layer=None))
        # the capped stream carries fewer blocks than the full network
        assert capped.effective.num_blocks < full.effective.num_blocks


class TestRoundThreeRegressions:
    def test_idle_first_spec_is_schema_error(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--spec", "idle:5@45C"]) == 2
        err = capsys.readouterr().err.strip()
        assert "cannot start with an idle phase" in err
        assert "Traceback" not in err

    def test_payload_round_trip_preserves_phase_kinds(self):
        import json

        factory = small_factory()
        scenario = LifetimeScenario.from_spec(DUTY_CYCLE_SPEC)
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        rebuilt = ScenarioResult.from_payload(
            json.loads(json.dumps(result.to_payload())))
        assert ([row["kind"] for row in rebuilt.phase_rows()]
                == ["active", "idle", "active"])
        assert (rebuilt.summary()["phases"][0]["num_inferences"]
                == result.summary()["phases"][0]["num_inferences"])

    def test_subnormal_weights_quantize_without_error(self):
        from repro.quantization.linear import AsymmetricQuantizer, SymmetricQuantizer

        values = np.array([5e-324])
        for quantizer in (AsymmetricQuantizer(8), SymmetricQuantizer(8)):
            levels, params = quantizer.quantize(values)
            assert params.qmin <= levels.min() <= levels.max() <= params.qmax

    def test_bare_at_sign_is_rejected(self):
        with pytest.raises(ValueError, match="'@' must be followed"):
            parse_scenario_spec("lenet5:int8:none:5@")

    def test_idle_phase_errors_name_their_token(self):
        with pytest.raises(ValueError, match="phase 'idle:2@-400C'"):
            parse_scenario_spec("lenet5:int8:none:5,idle:2@-400C")

    def test_nan_weights_do_not_poison_quantization(self):
        from repro.quantization.linear import (
            compute_asymmetric_params,
            compute_symmetric_params,
            quantize_with_params,
        )

        # NaN entries are excluded from the range; finite weights still
        # quantize correctly, and all-NaN tensors get the unit-scale fallback.
        for values in (np.array([np.nan, 1.0]), np.array([np.nan])):
            for params in (compute_symmetric_params(values),
                           compute_asymmetric_params(values)):
                assert np.isfinite(params.scale) and params.scale > 0
                levels = quantize_with_params(np.array([1.0]), params)
                assert params.qmin <= levels[0] <= params.qmax

    def test_validator_errors_name_the_parameter(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--rotation-step", "-1"]) == 2
        assert "parameter 'rotation_step'" in capsys.readouterr().err

    def test_inf_weights_do_not_poison_quantization_range(self):
        from repro.quantization.linear import (
            compute_asymmetric_params,
            dequantize_with_params,
            quantize_with_params,
        )

        params = compute_asymmetric_params(np.array([-5.0, 3.0, np.inf]))
        levels = quantize_with_params(np.array([3.0]), params)
        assert dequantize_with_params(levels, params)[0] == pytest.approx(3.0, abs=0.05)

    def test_nan_and_inf_scenario_inputs_are_rejected(self, capsys):
        from repro.cli import main

        for argv in (["scenario", "--spec", "custom_mnist:int8:none:3@nanC"],
                     ["scenario", "--spec", "custom_mnist:int8:none:3@infC"],
                     ["scenario", "--years", "nan"],
                     ["scenario", "--reference-temp", "nan"]):
            assert main(argv) == 2, argv
            err = capsys.readouterr().err
            assert "dnn-life: error:" in err
            assert "Traceback" not in err

    def test_compare_policies_rejects_scenario_configuration_clearly(self):
        from repro.core.framework import DnnLife

        network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
        framework = DnnLife(network, num_inferences=2,
                            scenario=LifetimeScenario.from_spec(
                                "custom_mnist:int8:none:2"))
        with pytest.raises(ValueError, match="without a scenario"):
            framework.compare_policies()

    def test_stress_star_import_exposes_timeline(self):
        import repro.aging.stress as stress

        assert "StressTimeline" in stress.__all__

    def test_quantize_rejects_nan_values_loudly(self):
        from repro.quantization.linear import (
            compute_asymmetric_params,
            quantize_with_params,
        )

        params = compute_asymmetric_params(np.array([0.5, -1.0]))
        with pytest.raises(ValueError, match="cannot quantize NaN"):
            quantize_with_params(np.array([0.5, np.nan, -1.0]), params)

    def test_scenario_validates_reference_temperature(self):
        with pytest.raises(ValueError, match="reference_temperature_c"):
            LifetimeScenario.from_spec("custom_mnist:int8:none:2",
                                       reference_temperature_c=float("nan"))

    def test_idle_duty_is_deduplicated_in_payload(self):
        import json

        factory = small_factory()
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:none:3,idle:2@45C,idle:2@25C")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        payload = result.to_payload()
        assert "duty" not in payload["phase_stress"][1]
        assert payload["phase_stress"][1]["duty_ref"] == 0
        assert payload["phase_stress"][2]["duty_ref"] == 0
        rebuilt = ScenarioResult.from_payload(json.loads(json.dumps(payload)))
        assert np.array_equal(rebuilt.phase_stress[1].duty,
                              rebuilt.phase_stress[0].duty)
        assert np.array_equal(rebuilt.effective.duty_cycles,
                              result.effective.duty_cycles)

    def test_mixed_width_spec_is_one_line_cli_error(self, capsys):
        from repro.cli import main

        assert main(["scenario", "--spec",
                     "lenet5:int8:none:2,lenet5:fp32:none:2"]) == 2
        err = capsys.readouterr().err.strip()
        assert "share one word width" in err
        assert "\n" not in err
