"""Batched-span leveling fast path: contract, property, and golden tests.

Three layers of protection for the fused remap composition
(:mod:`repro.core.span_compose`):

* property tests that :meth:`WearLeveler.span_table` /
  :meth:`WearLeveler.span_tables` agree span-for-span with the iterative
  :meth:`WearLeveler.spans` walk for every shipped leveler across sampled
  schedules and ``[start, stop)`` windows;
* unit tests of the span window-contract validator and its debug flag;
* byte-identity regressions pinning the batched engine's ``AgingResult``
  payloads to SHAs captured on the pre-refactor per-span loop, including a
  >255-span schedule that would expose any narrow-dtype shortcut in the
  composition, plus live batched-vs-loop and scipy-vs-numpy cross-checks.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.span_compose as span_compose
from repro.bench.aging_bench import BenchCase, _policy_for
from repro.core.simulation import AgingSimulator, PackedSpanKernel
from repro.leveling import (
    make_leveler,
    set_span_validation,
    span_validation_enabled,
)
from repro.leveling.remap import _check_span_tiling
from repro.memory.geometry import MemoryGeometry
from repro.utils.units import KB

# --------------------------------------------------------------------------- #
# Shared strategies / fixtures
# --------------------------------------------------------------------------- #

#: Every shipped leveler, with a sampling of its constructor schedules.
LEVELER_SPECS = st.one_of(
    st.just(("none", {})),
    st.builds(lambda p, s: ("rotation", {"period": p, "step": s}),
              st.integers(min_value=1, max_value=9),
              st.integers(min_value=1, max_value=5)),
    st.builds(lambda i: ("start_gap", {"interval": i}),
              st.integers(min_value=1, max_value=7)),
    st.builds(lambda i, f: ("wear_swap", {"interval": i, "swap_fraction": f}),
              st.integers(min_value=1, max_value=6),
              st.sampled_from([0.1, 0.25, 0.5])),
)


@st.composite
def leveler_and_window(draw):
    """A leveler spec plus a ``[start, stop)`` window inside its horizon."""
    spec = draw(LEVELER_SPECS)
    num_inferences = draw(st.integers(min_value=1, max_value=40))
    start = draw(st.integers(min_value=0, max_value=num_inferences))
    stop = draw(st.integers(min_value=start, max_value=num_inferences))
    return spec, num_inferences, start, stop


def _build_leveler(spec, fifo_depth_tiles=4, capacity_bytes=64):
    name, options = spec
    geometry = MemoryGeometry(capacity_bytes=capacity_bytes, word_bits=8)
    return make_leveler(name, geometry, fifo_depth_tiles, **options)


class TestSpanTableProperties:
    """`span_table(s)` must reproduce the iterative `spans()` walk exactly."""

    @settings(max_examples=200, deadline=None)
    @given(leveler_and_window())
    def test_tables_concatenate_to_iterative_spans(self, case):
        spec, num_inferences, start, stop = case
        leveler = _build_leveler(spec)
        expected = list(leveler.spans(num_inferences, start=start, stop=stop))
        tables = list(_build_leveler(spec).span_tables(
            num_inferences, start=start, stop=stop))
        got = [pair for table in tables for pair in table.iter_spans()]
        assert got == expected

    @settings(max_examples=200, deadline=None)
    @given(leveler_and_window())
    def test_table_permutations_match_epoch_walk(self, case):
        """Each span's table mapping equals `permutation(epoch)` at its start.

        The reference leveler walks epochs through the legacy interface; the
        tables come from an independent instance so feedback-free schedules
        cannot leak state between the two paths.
        """
        spec, num_inferences, start, stop = case
        reference = _build_leveler(spec)
        tables = _build_leveler(spec).span_tables(
            num_inferences, start=start, stop=stop)
        for table in tables:
            for index, (span_start, _) in enumerate(table.iter_spans()):
                np.testing.assert_array_equal(
                    table.permutation(index), reference.permutation(span_start))

    @settings(max_examples=150, deadline=None)
    @given(leveler_and_window())
    def test_window_split_is_seamless(self, case):
        """Walking a window in two pieces covers the same epochs with the
        same mapping as one piece — the scenario driver's phase contract."""
        spec, num_inferences, start, stop = case
        mid = (start + stop) // 2
        whole = _build_leveler(spec)
        split = _build_leveler(spec)
        mapping_whole = {}
        for table in whole.span_tables(num_inferences, start=start, stop=stop):
            for index, (span_start, length) in enumerate(table.iter_spans()):
                perm = table.permutation(index)
                for epoch in range(span_start, span_start + length):
                    mapping_whole[epoch] = perm
        mapping_split = {}
        for lo, hi in ((start, mid), (mid, stop)):
            for table in split.span_tables(num_inferences, start=lo, stop=hi):
                for index, (span_start, length) in enumerate(table.iter_spans()):
                    perm = table.permutation(index)
                    for epoch in range(span_start, span_start + length):
                        mapping_split[epoch] = perm
        assert set(mapping_whole) == set(mapping_split) == set(
            range(start, stop))
        for epoch, perm in mapping_whole.items():
            np.testing.assert_array_equal(perm, mapping_split[epoch])

    def test_schedule_driven_table_is_single_shot(self):
        leveler = _build_leveler(("rotation", {"period": 4, "step": 1}))
        tables = list(leveler.span_tables(16))
        assert len(tables) == 1
        assert tables[0].offsets is not None

    def test_feedback_driven_span_table_refuses(self):
        leveler = _build_leveler(("wear_swap", {"interval": 2}))
        with pytest.raises(NotImplementedError):
            leveler.span_table(10)

    def test_feedback_driven_tables_chunk_at_observe_boundaries(self):
        leveler = _build_leveler(("wear_swap", {"interval": 3}))
        tables = list(leveler.span_tables(10))
        assert [t.num_spans for t in tables] == [1, 1, 1, 1]
        assert [next(t.iter_spans()) for t in tables] == [
            (0, 3), (3, 3), (6, 3), (9, 1)]


class TestSpanValidation:
    """The debug window-contract check behind ``set_span_validation``."""

    def test_toggle_returns_previous_setting(self):
        initial = span_validation_enabled()
        try:
            assert set_span_validation(True) == initial
            assert span_validation_enabled()
            assert set_span_validation(False) is True
            assert not span_validation_enabled()
        finally:
            set_span_validation(initial)

    def test_shipped_levelers_pass_validation(self):
        previous = set_span_validation(True)
        try:
            for spec in (("none", {}), ("rotation", {"period": 3, "step": 2}),
                         ("start_gap", {"interval": 2}),
                         ("wear_swap", {"interval": 4})):
                leveler = _build_leveler(spec)
                for start, stop in ((0, 17), (5, 11), (3, 3), (0, 1)):
                    list(leveler.spans(17, start=start, stop=stop))
        finally:
            set_span_validation(previous)

    def test_tiling_check_accepts_exact_cover(self):
        _check_span_tiling(np.asarray([2, 5, 9]), np.asarray([3, 4, 1]),
                           2, 10, "unit")

    @pytest.mark.parametrize("starts,lengths,start,stop", [
        ([0, 4], [3, 4], 0, 8),          # gap: epoch 3 uncovered
        ([0, 2], [3, 6], 0, 8),          # overlap at epoch 2
        ([1, 4], [3, 4], 0, 8),          # first span misses window start
        ([0, 4], [4, 3], 0, 8),          # last span misses window stop
        ([0], [0], 0, 8),                # non-positive length
        ([], [], 0, 8),                  # no spans for a non-empty window
        ([0], [1], 5, 5),                # spans emitted for an empty window
    ])
    def test_tiling_check_rejects_broken_tables(self, starts, lengths,
                                                start, stop):
        with pytest.raises(AssertionError):
            _check_span_tiling(np.asarray(starts, dtype=np.int64),
                               np.asarray(lengths, dtype=np.int64),
                               start, stop, "unit")


# --------------------------------------------------------------------------- #
# Byte-identity regressions
# --------------------------------------------------------------------------- #

#: Leveler schedules pinned by the golden battery (the bench suite's set).
GOLDEN_LEVELERS = (
    ("rotation", {"period": 8, "step": 1}),
    ("start_gap", {"interval": 2}),
    ("wear_swap", {"interval": 5, "swap_fraction": 0.25}),
)

#: sha256 of the sorted-key JSON payload of each leveled packed run, captured
#: on the pre-refactor per-span loop engine.  The batched composition must
#: reproduce these byte-for-byte.
GOLDEN_8KB_SHAS = {
    ("none", "rotation"):
        "cf02205a6949c7ea738fba2ee44779a80c697e51e90bdbaa0ea85f5c682c8d87",
    ("inversion", "rotation"):
        "3b8af059df3339a67971462c7d9d39973497fbfe07baad12063e637124816a02",
    ("none", "start_gap"):
        "bd75c44920a365c9df630e4f3eab29ec8fbfb569143f21499fcc1470e1acf2a8",
    ("inversion", "start_gap"):
        "c76d7a13f2e0365a4416c3b8e57f5c5536b62abdebe306bd459fcfef96721c32",
    ("none", "wear_swap"):
        "8dc69c71584626113edca1a11e3de4fde893745718198ab62519ac9cb8a467a4",
    ("inversion", "wear_swap"):
        "a3712b6f344d5d7d90b4659d1240d4cc15d7d6880c183dd37d191c06f9fd7258",
}

#: Pre-refactor SHA of a 300-span rotation schedule (period 8, step 1): more
#: than 255 spans, so any uint8-shaped narrowing in the fused composition's
#: span indexing or coefficient handling would change the payload.
GOLDEN_300SPAN_SHA = \
    "b16239ce36e41360083e4dd4ca2c7ac74a5ec79d69f8dad474b8f10126bd2774"


def _golden_8kb_case() -> BenchCase:
    return BenchCase(name="golden_8kb", description="golden leveling case",
                     memory_kb=8, word_bits=8, num_blocks=12,
                     fifo_depth_tiles=4, num_inferences=12,
                     policies=("none", "inversion"))


def _golden_300span_case() -> BenchCase:
    return BenchCase(name="golden_300span", description="300-span schedule",
                     memory_kb=4, word_bits=8, num_blocks=6,
                     fifo_depth_tiles=4, num_inferences=300,
                     policies=("none",))


def _leveled_payload_sha(case: BenchCase, policy_name: str,
                         leveler_name: str, options: dict) -> str:
    stream = case.build_stream(seed=0)
    leveler = make_leveler(leveler_name, stream.geometry,
                           case.fifo_depth_tiles, **options)
    result = AgingSimulator(stream, _policy_for(case, policy_name, 0),
                            num_inferences=case.num_inferences, seed=0,
                            leveler=leveler).run()
    payload = json.dumps(result.to_payload(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TestGoldenPayloads:
    """The batched path must reproduce the pre-refactor loop byte-for-byte."""

    @pytest.mark.parametrize("policy_name", ["none", "inversion"])
    @pytest.mark.parametrize("leveler_name,options",
                             GOLDEN_LEVELERS, ids=lambda v: str(v))
    def test_golden_8kb(self, policy_name, leveler_name, options):
        sha = _leveled_payload_sha(_golden_8kb_case(), policy_name,
                                   leveler_name, options)
        assert sha == GOLDEN_8KB_SHAS[(policy_name, leveler_name)]

    def test_golden_300_span_schedule(self):
        """Overflow-shaped case: the schedule emits >255 constant spans."""
        case = _golden_300span_case()
        leveler = make_leveler("rotation",
                               MemoryGeometry(capacity_bytes=case.memory_kb * KB,
                                              word_bits=case.word_bits),
                               case.fifo_depth_tiles, period=8, step=1)
        table = leveler.span_table(case.num_inferences)
        assert table.num_spans > 255
        sha = _leveled_payload_sha(case, "none", "rotation",
                                   {"period": 8, "step": 1})
        assert sha == GOLDEN_300SPAN_SHA


class TestBatchedMatchesLoop:
    """Live cross-check: fused composition vs the retained per-span loop."""

    @staticmethod
    def _force_loop(monkeypatch):
        monkeypatch.setattr(PackedSpanKernel, "supports_batch",
                            property(lambda self: False))

    def _run(self, case, policy_name, leveler_name, options):
        stream = case.build_stream(seed=0)
        leveler = make_leveler(leveler_name, stream.geometry,
                               case.fifo_depth_tiles, **options)
        return AgingSimulator(stream, _policy_for(case, policy_name, 0),
                              num_inferences=case.num_inferences, seed=0,
                              leveler=leveler).run()

    @pytest.mark.parametrize("policy_name",
                             ["none", "inversion", "barrel_shifter"])
    @pytest.mark.parametrize("leveler_name,options",
                             GOLDEN_LEVELERS, ids=lambda v: str(v))
    def test_bitwise_equal_results(self, monkeypatch, policy_name,
                                   leveler_name, options):
        case = _golden_8kb_case()
        batched = self._run(case, policy_name, leveler_name, options)
        self._force_loop(monkeypatch)
        loop = self._run(case, policy_name, leveler_name, options)
        assert np.array_equal(batched.duty_cycles, loop.duty_cycles)

    def test_300_span_schedule_bitwise_equal(self, monkeypatch):
        case = _golden_300span_case()
        batched = self._run(case, "inversion", "rotation",
                            {"period": 8, "step": 1})
        self._force_loop(monkeypatch)
        loop = self._run(case, "inversion", "rotation",
                         {"period": 8, "step": 1})
        assert np.array_equal(batched.duty_cycles, loop.duty_cycles)

    def test_permutation_matvec_fallback_is_bitwise_equal(self, monkeypatch):
        """The numpy gather fallback must match the scipy csr_matvecs path."""
        if span_compose._CSR_MATVECS is None:
            pytest.skip("scipy csr_matvecs unavailable; fallback already "
                        "exercised by the other tests")
        case = _golden_8kb_case()
        scipy_result = self._run(case, "inversion", "wear_swap",
                                 {"interval": 2, "swap_fraction": 0.25})
        monkeypatch.setattr(span_compose, "_CSR_MATVECS", None)
        numpy_result = self._run(case, "inversion", "wear_swap",
                                 {"interval": 2, "swap_fraction": 0.25})
        assert np.array_equal(scipy_result.duty_cycles,
                              numpy_result.duty_cycles)
