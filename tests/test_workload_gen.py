"""Tests for the stochastic workload generator (``repro.workloads``).

Covers the traffic-model mini-language (mix parse/format round trips,
payload round trips), the determinism contract (same ``(model, history)``
=> identical timelines, in-process and across processes), the compiler
(valid scenarios, merged adjacency, idle insertion, OTA swaps, the
degenerate all-idle fallback) and the batch compiler's weighted
``FleetSpec`` output, plus the registered ``workload`` experiment end to
end through the CLI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.fleet import FleetSpec
from repro.scenario import LifetimeScenario, Phase, merge_adjacent_phases
from repro.workloads import (
    TrafficModel,
    compile_fleet_spec,
    compile_history,
    compile_timeline,
    format_model_mix,
    parse_model_mix,
    parse_optional_corner,
    sample_timeline,
)

TWO_MODELS = (("lenet5", "int8_symmetric", "dnn_life"),
              ("custom_mnist", "int8_symmetric", "inversion"))


def small_model(**overrides) -> TrafficModel:
    settings = dict(models=TWO_MODELS, model_weights=(0.6, 0.4),
                    rate_per_day=24.0, burst_probability=0.25,
                    diurnal_amplitude=0.6, night_corner=(0.7, 0.2),
                    ota_interval_days=2.0, idle_threshold=2,
                    horizon_days=5, seed=7)
    settings.update(overrides)
    return TrafficModel(**settings)


# --------------------------------------------------------------------- #
# Mix mini-language
# --------------------------------------------------------------------- #
class TestModelMix:
    def test_parse_resolves_aliases(self):
        models, weights = parse_model_mix(
            "0.75*lenet5:int8:none|0.25*custom_mnist:int8:dnn_life")
        assert models == (("lenet5", "int8_symmetric", "none"),
                          ("custom_mnist", "int8_symmetric", "dnn_life"))
        assert weights == (0.75, 0.25)

    def test_unweighted_mix_is_uniform(self):
        _, weights = parse_model_mix("lenet5:int8:none|custom_mnist:int8:none")
        assert weights == (0.5, 0.5)

    @pytest.mark.parametrize("text,fragment", [
        ("", "empty"),
        ("lenet5:int8", "NETWORK:FORMAT:POLICY"),
        ("bogus:int8:none", "unknown network"),
        ("lenet5:int9:none", "unknown data format"),
        ("lenet5:int8:rotate", "unknown policy"),
        ("0.9*lenet5:int8:none|0.2*custom_mnist:int8:none", "sum to 1"),
    ])
    def test_one_line_errors(self, text, fragment):
        with pytest.raises(ValueError) as excinfo:
            parse_model_mix(text)
        message = str(excinfo.value)
        assert fragment in message
        assert "\n" not in message

    def test_optional_corner(self):
        assert parse_optional_corner("", "x") is None
        assert parse_optional_corner("  ", "x") is None
        assert parse_optional_corner("0.8V:0.5GHz", "x") == (0.8, 0.5)


@st.composite
def model_mixes(draw):
    """Weighted mixes over the 8-bit formats with exactly-representable
    (sixteenths) weights, so ``parse(format(x)) == x`` holds exactly."""
    count = draw(st.integers(min_value=1, max_value=3))
    networks = draw(st.lists(
        st.sampled_from(["lenet5", "custom_mnist", "alexnet"]),
        min_size=count, max_size=count))
    formats = draw(st.lists(
        st.sampled_from(["int8_symmetric", "int8_asymmetric"]),
        min_size=count, max_size=count))
    policies = draw(st.lists(
        st.sampled_from(["none", "inversion", "dnn_life"]),
        min_size=count, max_size=count))
    models = tuple(zip(networks, formats, policies))
    cuts = draw(st.lists(st.integers(min_value=1, max_value=15),
                         min_size=count - 1, max_size=count - 1,
                         unique=True))
    bounds = [0] + sorted(cuts) + [16]
    weights = tuple((bounds[i + 1] - bounds[i]) / 16 for i in range(count))
    return models, weights


class TestMixRoundTrip:
    @given(mix=model_mixes())
    @settings(max_examples=40, deadline=None)
    def test_format_parse_round_trip(self, mix):
        models, weights = mix
        assert parse_model_mix(format_model_mix(models, weights)) \
            == (models, weights)

    @given(mix=model_mixes(), seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_payload_round_trip(self, mix, seed):
        models, weights = mix
        model = TrafficModel(models=models, model_weights=weights,
                             burst_probability=0.5, diurnal_amplitude=0.25,
                             night_corner=(0.7, 0.2), ota_interval_days=1.5,
                             idle_threshold=1, horizon_days=3, seed=seed)
        assert TrafficModel.from_payload(model.to_payload()) == model
        assert (TrafficModel.from_payload(
            json.loads(json.dumps(model.to_payload()))) == model)


# --------------------------------------------------------------------- #
# Schema validation
# --------------------------------------------------------------------- #
class TestTrafficModelValidation:
    @pytest.mark.parametrize("overrides,fragment", [
        (dict(models=()), "at least one"),
        (dict(models=(("lenet5", "int8_symmetric", "none"),
                      ("lenet5", "float32", "none")),
              model_weights=()), "one word width"),
        (dict(model_weights=(0.6, 0.3)), "sum to 1"),
        (dict(model_weights=(1.2, -0.2)), "> 0"),
        (dict(rate_per_day=0.0), "rate_per_day"),
        (dict(burst_probability=1.5), "burst_probability"),
        (dict(burst_factor=0.5), "burst_factor"),
        (dict(diurnal_amplitude=1.0), "diurnal_amplitude"),
        (dict(ota_interval_days=-1.0), "ota_interval_days"),
        (dict(idle_threshold=-1), "idle_threshold"),
        (dict(horizon_days=0), "horizon_days"),
    ])
    def test_one_line_errors(self, overrides, fragment):
        with pytest.raises(ValueError) as excinfo:
            small_model(**overrides)
        message = str(excinfo.value)
        assert fragment in message
        assert "\n" not in message


# --------------------------------------------------------------------- #
# Sampling determinism
# --------------------------------------------------------------------- #
class TestSampling:
    def test_slot_count_and_halves(self):
        slots = sample_timeline(small_model(), history=0)
        model = small_model()
        assert len(slots) == 2 * model.horizon_days
        assert [slot.daytime for slot in slots[:2]] == [True, False]
        day_temps = {slot.temperature_c for slot in slots if slot.daytime}
        night = [slot for slot in slots if not slot.daytime]
        assert day_temps == {model.day_temperature_c}
        assert {slot.temperature_c for slot in night} \
            == {model.night_temperature_c}
        assert {slot.corner for slot in night} == {(0.7, 0.2)}

    def test_same_history_same_slots(self):
        assert sample_timeline(small_model(), history=3) \
            == sample_timeline(small_model(), history=3)

    def test_histories_and_seeds_differ(self):
        base = sample_timeline(small_model(), history=0)
        assert sample_timeline(small_model(), history=1) != base
        assert sample_timeline(small_model(seed=8), history=0) != base

    def test_degenerate_knobs_consume_no_state(self):
        # Turning bursts fully on/off must not shift the Poisson draws the
        # way a skipped coin flip would; compare against an explicit replay.
        quiet = small_model(burst_probability=0.0, ota_interval_days=0.0,
                            models=TWO_MODELS[:1], model_weights=())
        loud = replace(quiet, burst_probability=1.0)
        quiet_slots = sample_timeline(quiet, history=0)
        loud_slots = sample_timeline(loud, history=0)
        assert all(not slot.burst for slot in quiet_slots)
        assert all(slot.burst for slot in loud_slots)
        rng = np.random.default_rng(np.random.SeedSequence([7, 0]))
        for slot in quiet_slots:
            assert slot.epochs == int(rng.poisson(
                quiet.slot_rate(slot.daytime, False)))

    def test_ota_swaps_models(self):
        slots = sample_timeline(small_model(ota_interval_days=0.5,
                                            horizon_days=10), history=0)
        assert len({slot.model for slot in slots}) > 1

    def test_no_ota_keeps_one_model(self):
        slots = sample_timeline(small_model(ota_interval_days=0.0), history=0)
        assert len({slot.model for slot in slots}) == 1

    def test_idle_threshold_marks_slots(self):
        model = small_model(rate_per_day=4.0, diurnal_amplitude=0.9,
                            idle_threshold=1, horizon_days=20)
        slots = sample_timeline(model, history=0)
        assert any(slot.idle for slot in slots)
        assert all(slot.idle == (slot.epochs <= 1) for slot in slots)


# --------------------------------------------------------------------- #
# Compiler
# --------------------------------------------------------------------- #
class TestCompiler:
    def test_compiled_scenario_is_valid_and_merged(self):
        model = small_model()
        scenario = compile_history(model, history=0)
        assert isinstance(scenario, LifetimeScenario)
        assert not scenario.phases[0].is_idle
        assert all(phase.duration > 0 for phase in scenario.phases)
        # adjacency: no two neighbours share the full configuration
        assert merge_adjacent_phases(scenario.phases) == scenario.phases
        # the spec string round-trips through the phase mini-language
        rebuilt = LifetimeScenario.from_spec(scenario.to_spec())
        assert rebuilt.phases == scenario.phases

    def test_leading_idles_dropped(self):
        slots = sample_timeline(small_model(), history=0)
        idle_head = [replace(slots[0], idle=True, epochs=0)] + slots
        scenario = compile_timeline(small_model(), idle_head)
        assert not scenario.phases[0].is_idle

    def test_all_idle_falls_back_to_one_epoch(self):
        slots = [replace(slot, idle=True)
                 for slot in sample_timeline(small_model(), history=0)]
        scenario = compile_timeline(small_model(), slots)
        assert len(scenario.phases) == 1
        assert scenario.phases[0].duration == 1
        assert scenario.phases[0].network == slots[0].model[0]

    def test_idle_slots_compile_to_idle_phases(self):
        model = small_model(rate_per_day=4.0, diurnal_amplitude=0.9,
                            idle_threshold=1, horizon_days=20)
        scenario = compile_history(model, history=0)
        assert any(phase.is_idle for phase in scenario.phases)

    def test_years_and_reference_pass_through(self):
        scenario = compile_history(small_model(), years=3.5,
                                   reference_temperature_c=70.0)
        assert scenario.years == 3.5
        assert scenario.reference_temperature_c == 70.0


class TestFleetCompiler:
    def test_weighted_spec(self):
        spec = compile_fleet_spec(small_model(), histories=12, devices=24,
                                  usage_sigma=0.3, thermal_sigma_c=5.0,
                                  seed_groups=2)
        assert isinstance(spec, FleetSpec)
        assert spec.num_devices == 24
        assert spec.seed == small_model().seed
        assert len(spec.scenarios) == len(set(spec.scenarios))
        assert sum(spec.scenario_weights) == pytest.approx(1.0, abs=1e-12)
        # every weight is a multiple of 1/12
        for weight in spec.scenario_weights:
            assert (weight * 12) == pytest.approx(round(weight * 12))

    def test_devices_default_to_histories(self):
        assert compile_fleet_spec(small_model(), histories=5).num_devices == 5

    def test_duplicate_histories_fold_into_weights(self):
        model = small_model(burst_probability=0.0, ota_interval_days=0.0,
                            diurnal_amplitude=0.0, rate_per_day=2.0,
                            idle_threshold=10, horizon_days=1,
                            models=TWO_MODELS[:1], model_weights=())
        # every history is all-idle => identical fallback scenario
        spec = compile_fleet_spec(model, histories=8)
        assert len(spec.scenarios) == 1
        assert spec.scenario_weights == (1.0,)

    def test_rejects_no_histories(self):
        with pytest.raises(ValueError, match="histories"):
            compile_fleet_spec(small_model(), histories=0)

    def test_spec_payload_round_trips(self):
        spec = compile_fleet_spec(small_model(), histories=6)
        assert FleetSpec.from_payload(spec.to_payload()) == spec


# --------------------------------------------------------------------- #
# Cross-process determinism (the fleet/ guarantee, extended upstream)
# --------------------------------------------------------------------- #
COMPILE_SUBPROCESS = """\
import json, sys
from repro.workloads import TrafficModel, compile_fleet_spec
model = TrafficModel.from_payload(json.loads(sys.argv[1]))
spec = compile_fleet_spec(model, histories=int(sys.argv[2]))
print(json.dumps(spec.to_payload(), sort_keys=True))
"""


class TestCrossProcessDeterminism:
    def test_compiled_fleet_spec_is_byte_identical(self):
        model = small_model()
        local = json.dumps(
            compile_fleet_spec(model, histories=8).to_payload(),
            sort_keys=True)
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        remote = subprocess.run(
            [sys.executable, "-c", COMPILE_SUBPROCESS,
             json.dumps(model.to_payload()), "8"],
            capture_output=True, text=True, env=env, check=True)
        assert remote.stdout.strip() == local


# --------------------------------------------------------------------- #
# The registered experiment
# --------------------------------------------------------------------- #
class TestWorkloadExperiment:
    @pytest.fixture(scope="class")
    def fleet_payload(self):
        from repro.experiments.workload import run_workload

        return run_workload(mode="fleet", histories=4, devices=6,
                            horizon_days=2, weight_memory_kb=4,
                            fifo_depth_tiles=4, quick=True, seed=0)

    def test_payload_shape(self, fleet_payload):
        assert fleet_payload["compiled"]["histories"] == 4
        assert len(fleet_payload["timeline"]["slots"]) == 4
        assert fleet_payload["result"]["workload"]["devices"] == 6
        model = TrafficModel.from_payload(fleet_payload["traffic_model"])
        assert model.horizon_days == 2

    def test_renderer_mentions_timeline_and_survival(self, fleet_payload):
        from repro.experiments.workload import render_workload

        text = render_workload(fleet_payload, {})
        assert "sampled timeline" in text
        assert "survival" in text

    def test_scenario_mode_delegates(self):
        from repro.experiments.workload import run_workload

        payload = run_workload(mode="scenario", horizon_days=2,
                               weight_memory_kb=4, fifo_depth_tiles=4,
                               quick=True, seed=0)
        assert payload["compiled"]["spec"] == payload["timeline"]["spec"]
        assert payload["result"]["workload"]["spec"] \
            == payload["timeline"]["spec"]
        assert len(payload["result"]["phases"]) \
            == payload["timeline"]["num_phases"]

    def test_registered_and_sweepable(self):
        from repro.orchestration.registry import load_all_experiments

        spec = load_all_experiments().get("workload")
        assert "sweep" in spec.tags
        assert spec.affinity == ("weight_memory_kb", "fifo_depth_tiles",
                                 "quick", "seed")
        assert spec.full_config == {"histories": 1000, "devices": 1000}
