"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    RngMixin,
    as_rng,
    deterministic_hash_seed,
    random_bits,
    spawn_rngs,
)


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        assert as_rng(42).integers(0, 1000) == as_rng(42).integers(0, 1000)

    def test_different_seeds_differ(self):
        draws_a = as_rng(1).random(16)
        draws_b = as_rng(2).random(16)
        assert not np.allclose(draws_a, draws_b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(as_rng(sequence), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        assert not np.allclose(children[0].random(8), children[1].random(8))

    def test_reproducible_family(self):
        first = [generator.random() for generator in spawn_rngs(3, 4)]
        second = [generator.random() for generator in spawn_rngs(3, 4)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 3)
        assert len(children) == 3


class TestRngMixin:
    class Component(RngMixin):
        def __init__(self, seed=None):
            self._init_rng(seed)

    def test_seeded_component_is_deterministic(self):
        assert (self.Component(5).rng.integers(0, 100)
                == self.Component(5).rng.integers(0, 100))

    def test_reseed_restores_stream(self):
        component = self.Component(1)
        first = component.rng.random(4)
        component.reseed(1)
        assert np.allclose(component.rng.random(4), first)


class TestRandomBits:
    def test_values_are_binary(self, rng):
        bits = random_bits(rng, 1000)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_bias_is_respected(self, rng):
        bits = random_bits(rng, 20000, probability_of_one=0.8)
        assert 0.77 < bits.mean() < 0.83

    def test_zero_probability(self, rng):
        assert random_bits(rng, 100, probability_of_one=0.0).sum() == 0

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            random_bits(rng, 10, probability_of_one=1.5)


class TestDeterministicHashSeed:
    def test_stable_across_calls(self):
        assert deterministic_hash_seed("a", 1) == deterministic_hash_seed("a", 1)

    def test_differs_for_different_inputs(self):
        assert deterministic_hash_seed("a", 1) != deterministic_hash_seed("a", 2)

    def test_fits_in_63_bits(self):
        assert 0 <= deterministic_hash_seed("net", "layer", 123) < 2**63
