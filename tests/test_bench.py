"""Tests for the engine benchmark harness (``dnn-life bench``)."""

import json

import numpy as np
import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchCase,
    SyntheticWeightStream,
    bench_fleet,
    bench_workloads,
    default_bench_cases,
    render_bench_report,
    run_aging_bench,
)
from repro.cli import main
from repro.memory.geometry import MemoryGeometry


@pytest.fixture(scope="module")
def smoke_payload():
    """One smoke-case bench run shared by the structural assertions."""
    cases = [case for case in default_bench_cases() if case.name == "smoke_mnist_8bit"]
    return run_aging_bench(cases, repeats=1, verify=True)


class TestSyntheticWeightStream:
    def test_block_structure(self):
        geometry = MemoryGeometry(capacity_bytes=1024, word_bits=64)
        stream = SyntheticWeightStream(geometry, num_blocks=6, fifo_depth_tiles=2,
                                       seed=0)
        blocks = list(stream.iter_blocks())
        assert len(blocks) == 6
        assert all(block.num_words == stream.words_per_block for block in blocks)
        assert [block.region for block in blocks] == [0, 1, 0, 1, 0, 1]
        packed = stream.packed_bits()
        assert packed.bits.shape == (6, stream.words_per_block, 64)
        assert stream.packed_bits() is packed

    def test_bias_shapes_bit_density(self):
        geometry = MemoryGeometry(capacity_bytes=4096, word_bits=8)
        dense = SyntheticWeightStream(geometry, num_blocks=4, seed=0,
                                      probability_of_one=0.9)
        sparse = SyntheticWeightStream(geometry, num_blocks=4, seed=0,
                                       probability_of_one=0.1)
        assert dense.packed_bits().bits.mean() > sparse.packed_bits().bits.mean()

    def test_rejects_indivisible_fifo(self):
        geometry = MemoryGeometry(capacity_bytes=1024, word_bits=8)
        with pytest.raises(ValueError):
            SyntheticWeightStream(geometry, num_blocks=2, fifo_depth_tiles=3)


class TestBenchHarness:
    def test_payload_structure(self, smoke_payload):
        assert smoke_payload["schema"] == BENCH_SCHEMA
        assert len(smoke_payload["cases"]) == 1
        entry = smoke_payload["cases"][0]
        assert entry["case"]["name"] == "smoke_mnist_8bit"
        assert set(entry["policies"]) == {"none", "inversion", "barrel_shifter",
                                          "dnn_life"}
        for row in entry["policies"].values():
            assert row["blockwise_seconds"] > 0
            assert row["packed_seconds"] > 0
            assert row["speedup"] > 0
        assert entry["packed_tensor_bytes"] > 0
        assert smoke_payload["min_speedup"] > 0
        assert smoke_payload["geomean_speedup"] > 0

    def test_deterministic_policies_match_exactly(self, smoke_payload):
        rows = smoke_payload["cases"][0]["policies"]
        for name in ("none", "inversion", "barrel_shifter"):
            assert rows[name]["deterministic"] is True
            assert rows[name]["exact_match"] is True
        assert rows["dnn_life"]["deterministic"] is False
        assert rows["dnn_life"]["exact_match"] is None

    def test_explicit_verification(self, smoke_payload):
        verification = smoke_payload["verification"]
        assert verification["explicit_match"] is True
        assert set(verification["policies"]) == {"none", "inversion",
                                                 "inversion_per_location",
                                                 "barrel_shifter"}
        assert all(verification["policies"].values())

    def test_render_contains_cases_and_summary(self, smoke_payload):
        text = render_bench_report(smoke_payload)
        assert "smoke_mnist_8bit" in text
        assert "minimum case speedup" in text
        assert "explicit-engine cross-check: OK" in text

    def test_payload_is_json_safe(self, smoke_payload):
        encoded = json.loads(json.dumps(smoke_payload))
        assert encoded["schema"] == BENCH_SCHEMA

    def test_synthetic_case_runs(self):
        case = BenchCase(name="tiny_synthetic", description="test",
                         memory_kb=2, word_bits=16, num_blocks=5,
                         num_inferences=4, policies=("none", "inversion"))
        payload = run_aging_bench([case], repeats=1, verify=False, leveling=False)
        assert "verification" not in payload
        assert "leveling" not in payload
        entry = payload["cases"][0]
        assert entry["stream"]["network"] == "synthetic"
        assert entry["policies"]["none"]["exact_match"] is True

    def test_default_cases_include_acceptance_config(self):
        names = {case.name for case in default_bench_cases()}
        assert "alexnet_512kb_64bit" in names
        acceptance = next(case for case in default_bench_cases()
                          if case.name == "alexnet_512kb_64bit")
        assert acceptance.memory_kb == 512
        assert acceptance.word_bits == 64

    def test_stream_store_entry(self, smoke_payload):
        entry = smoke_payload["cases"][0]["stream_store"]
        assert entry["hit"] is True
        assert entry["bit_identical"] is True
        assert entry["cold_build_seconds"] > 0
        assert entry["warm_load_seconds"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["cold_build_seconds"] / entry["warm_load_seconds"])
        assert len(entry["key"]) == 64 and len(entry["payload_sha256"]) == 64
        assert entry["entry_nbytes"] > 0

    def test_stream_store_render_line(self, smoke_payload):
        text = render_bench_report(smoke_payload)
        assert "stream store (cold build vs memory-mapped reload)" in text
        assert "bit-identical" in text and "MISMATCH" not in text

    def test_stream_store_measured_in_ephemeral_dir(self, tmp_path, monkeypatch):
        """The bench must not touch (or be flattered by) the user's store."""
        from repro.bench.aging_bench import bench_case

        monkeypatch.setenv("DNN_LIFE_STREAM_STORE", str(tmp_path / "real"))
        case = BenchCase(name="tiny_synthetic", description="test",
                         memory_kb=2, word_bits=16, num_blocks=5,
                         num_inferences=2, policies=("none",))
        entry = bench_case(case, repeats=1)
        assert entry["stream_store"]["hit"] is True
        assert not (tmp_path / "real").exists()

    def test_leveling_entry(self, smoke_payload):
        """The BENCH_aging.json payload carries the wear-leveling entry."""
        leveling = smoke_payload["leveling"]
        assert leveling["case"]["name"] == "leveling_64kb_8bit_fifo4"
        assert leveling["verification"]["explicit_match"] is True
        labels = set(leveling["entries"])
        assert "none+rotation" in labels and "inversion+wear_swap" in labels
        for row in leveling["entries"].values():
            assert row["baseline_seconds"] > 0
            assert row["leveled_seconds"] > 0
            assert row["overhead"] > 0
            assert np.isfinite(row["region_imbalance_baseline_pp"])
            assert np.isfinite(row["region_imbalance_leveled_pp"])

    def test_leveling_small_case_override(self):
        """bench_leveling accepts a custom (tiny) case for fast checks."""
        from repro.bench import bench_leveling

        case = BenchCase(name="tiny_leveling", description="test",
                         memory_kb=2, word_bits=8, num_blocks=4,
                         fifo_depth_tiles=2, num_inferences=6,
                         policies=("none",))
        payload = bench_leveling(case, repeats=1, verify=False)
        assert payload["case"]["name"] == "tiny_leveling"
        assert "verification" not in payload
        assert set(payload["entries"]) == {"none+rotation", "none+start_gap",
                                           "none+wear_swap"}

    def test_leveling_overhead_gate(self):
        """The overhead budget flags schedule-driven and wear-swap breaches."""
        from repro.bench import (
            LEVELING_OVERHEAD_LIMIT,
            WEAR_SWAP_OVERHEAD_LIMIT,
            check_leveling_overheads,
        )

        assert WEAR_SWAP_OVERHEAD_LIMIT > LEVELING_OVERHEAD_LIMIT
        payload = {"entries": {
            "none+rotation": {"overhead": LEVELING_OVERHEAD_LIMIT - 0.5},
            "none+start_gap": {"overhead": LEVELING_OVERHEAD_LIMIT + 1.0},
            # within the wear-swap budget, above the schedule-driven one:
            # must NOT be flagged
            "none+wear_swap": {"overhead": WEAR_SWAP_OVERHEAD_LIMIT - 1.0},
            "inversion+wear_swap": {"overhead": WEAR_SWAP_OVERHEAD_LIMIT + 2.0},
            "inversion+rotation": {"overhead": None},
        }}
        violations = check_leveling_overheads(payload)
        assert len(violations) == 2
        assert any(v.startswith("none+start_gap:") for v in violations)
        assert any(v.startswith("inversion+wear_swap:") for v in violations)
        assert check_leveling_overheads({"entries": {}}) == []

    def test_leveling_smoke_case_within_budget(self, smoke_payload):
        """The bench's own leveling entries respect the CI overhead gate."""
        from repro.bench import check_leveling_overheads

        assert check_leveling_overheads(smoke_payload["leveling"]) == []

    def test_leveling_render(self, smoke_payload):
        text = render_bench_report(smoke_payload)
        assert "wear-leveling overhead" in text
        assert "leveling explicit-engine cross-check: OK" in text


class TestBenchCli:
    def test_bench_verb_writes_trajectory(self, tmp_path, capsys):
        output = tmp_path / "BENCH_aging.json"
        code = main(["bench", "--case", "smoke_mnist_8bit", "--repeats", "1",
                     "--output", str(output)])
        assert code == 0
        captured = capsys.readouterr()
        assert "aging-engine benchmark" in captured.out
        payload = json.loads(output.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["cases"][0]["case"]["name"] == "smoke_mnist_8bit"

    def test_bench_min_speedup_gate(self, tmp_path, capsys):
        code = main(["bench", "--case", "smoke_mnist_8bit", "--repeats", "1",
                     "--skip-verify", "--output", "-",
                     "--min-speedup", "1e9"])
        assert code == 1
        assert "below the required" in capsys.readouterr().err

    def test_bench_unknown_case_is_usage_error(self, capsys):
        code = main(["bench", "--case", "nonexistent"])
        assert code == 2
        assert "unknown bench case" in capsys.readouterr().err


class TestScenarioBench:
    def test_scenario_entry(self, smoke_payload):
        entry = smoke_payload["scenario"]
        assert entry["num_phases"] == 4
        assert entry["scenario_seconds"] > 0
        assert entry["single_phase_seconds"] > 0
        assert entry["overhead"] is not None
        assert entry["effective_years"] < entry["wall_years"]

    def test_scenario_cross_check_passes(self, smoke_payload):
        verification = smoke_payload["scenario"]["verification"]
        assert verification["explicit_match"] is True
        checks = verification["checks"]
        # both multi-phase scenarios, with and without levelers, plus the
        # degenerate single-phase equivalence
        assert "model_swap_thermal+none" in checks
        assert "model_swap_thermal+wear_swap" in checks
        assert "duty_cycling_idle+rotation" in checks
        assert checks["degenerate_single_phase"] is True
        assert all(checks.values())

    def test_scenario_render(self, smoke_payload):
        text = render_bench_report(smoke_payload)
        assert "scenario timeline" in text
        assert "scenario explicit-engine cross-check: OK" in text

    def test_case_selection_skips_scenario(self):
        cases = [case for case in default_bench_cases()
                 if case.name == "smoke_mnist_8bit"]
        payload = run_aging_bench(cases, repeats=1, verify=False,
                                  leveling=False, scenario=False, fleet=False)
        assert "scenario" not in payload

    def test_payload_with_scenario_is_json_safe(self, smoke_payload):
        json.dumps(smoke_payload["scenario"])


class TestDvfsBench:
    def test_dvfs_entry(self, smoke_payload):
        entry = smoke_payload["dvfs"]
        assert entry["num_phases"] == 4
        assert entry["num_operating_points"] == 4
        assert entry["dvfs_seconds"] > 0
        assert entry["single_point_seconds"] > 0
        assert entry["overhead"] is not None
        # the multi-point timeline and its reference-pinned twin must age
        # differently (that is the whole point of the layer)
        assert (entry["effective_years_dvfs"]
                != entry["effective_years_single_point"])
        # the 0.62V idle corner must flag retention risk
        assert entry["idle_retention_mean"] > 0.5

    def test_dvfs_scenarios_cross_check(self, smoke_payload):
        checks = smoke_payload["scenario"]["verification"]["checks"]
        assert "dvfs_retention+none" in checks
        assert "dvfs_retention+rotation" in checks
        assert "dvfs_retention+wear_swap" in checks
        assert all(checks.values())

    def test_dvfs_render(self, smoke_payload):
        text = render_bench_report(smoke_payload)
        assert "dvfs timeline" in text
        assert "operating points" in text

    def test_case_selection_skips_dvfs(self):
        cases = [case for case in default_bench_cases()
                 if case.name == "smoke_mnist_8bit"]
        payload = run_aging_bench(cases, repeats=1, verify=False,
                                  leveling=False, scenario=False, dvfs=False,
                                  fleet=False)
        assert "dvfs" not in payload

    def test_skip_dvfs_flag(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main(["bench", "--output", str(output), "--repeats", "1",
                     "--skip-verify", "--skip-leveling", "--skip-scenario",
                     "--skip-dvfs", "--case", "smoke_mnist_8bit"]) == 0
        payload = json.loads(output.read_text())
        assert "dvfs" not in payload

    def test_payload_with_dvfs_is_json_safe(self, smoke_payload):
        json.dumps(smoke_payload["dvfs"])

    def test_fleet_entry(self, smoke_payload):
        entry = smoke_payload["fleet"]
        assert entry["devices"] == 1000
        assert entry["num_cohorts"] >= 2
        assert entry["fleet_seconds"] > 0
        assert entry["devices_per_second"] > 0
        assert entry["per_device_scenario_seconds"] > 0
        # The cohort-shared engine must beat the extrapolated per-device loop.
        assert entry["speedup"] > 1.0
        assert sum(entry["modes"].values()) == entry["devices"]

    def test_fleet_cross_check_passes(self, smoke_payload):
        verification = smoke_payload["fleet"]["verification"]
        assert verification["loop_match"] is True
        assert (len(verification["per_device_match"])
                == verification["subsample_devices"])

    def test_fleet_small_population(self):
        payload = bench_fleet(repeats=1, devices=24)
        assert payload["devices"] == 24
        assert payload["verification"]["loop_match"] is True

    def test_fleet_render(self, smoke_payload):
        text = render_bench_report(smoke_payload)
        assert "fleet population" in text
        assert "fleet per-device-loop cross-check: OK" in text

    def test_case_selection_skips_fleet(self):
        cases = [case for case in default_bench_cases()
                 if case.name == "smoke_mnist_8bit"]
        payload = run_aging_bench(cases, repeats=1, verify=False,
                                  leveling=False, scenario=False, dvfs=False,
                                  fleet=False)
        assert "fleet" not in payload

    def test_skip_fleet_flag(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main(["bench", "--output", str(output), "--repeats", "1",
                     "--skip-verify", "--skip-leveling", "--skip-scenario",
                     "--skip-dvfs", "--skip-fleet",
                     "--case", "smoke_mnist_8bit"]) == 0
        payload = json.loads(output.read_text())
        assert "fleet" not in payload

    def test_payload_with_fleet_is_json_safe(self, smoke_payload):
        json.dumps(smoke_payload["fleet"])

    def test_workloads_entry(self, smoke_payload):
        entry = smoke_payload["workloads"]
        assert entry["histories"] > 0
        assert entry["histories_per_second"] > 0
        assert entry["byte_identical"] is True
        assert entry["unique_scenarios"] >= 1
        assert entry["devices_per_second"] > 0

    def test_workloads_small_run(self):
        payload = bench_workloads(repeats=1, histories=16, fleet_histories=4,
                                  devices=8)
        assert payload["histories"] == 16
        assert payload["devices"] == 8
        assert payload["byte_identical"] is True

    def test_workloads_render(self, smoke_payload):
        text = render_bench_report(smoke_payload)
        assert "workload generator" in text
        assert "byte-identical recompile" in text

    def test_skip_workloads_flag(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main(["bench", "--output", str(output), "--repeats", "1",
                     "--skip-verify", "--skip-leveling", "--skip-scenario",
                     "--skip-dvfs", "--skip-fleet", "--skip-workloads",
                     "--case", "smoke_mnist_8bit"]) == 0
        payload = json.loads(output.read_text())
        assert "workloads" not in payload

    def test_payload_with_workloads_is_json_safe(self, smoke_payload):
        json.dumps(smoke_payload["workloads"])
