"""Tests for the DnnLife end-to-end framework and the PolicyComparison report."""

import numpy as np
import pytest

from repro.accelerator.tpu import TpuLikeNpu
from repro.core.framework import DnnLife, PolicyComparison
from repro.core.policies import DnnLifePolicy, NoMitigationPolicy
from repro.core.simulation import AgingResult
from repro.nn.models import custom_mnist_cnn
from repro.nn.weights import attach_synthetic_weights


@pytest.fixture
def mnist_framework(mnist_network):
    return DnnLife(mnist_network, data_format="int8_symmetric", num_inferences=10, seed=0)


class TestDnnLifeAnalysis:
    def test_bit_distribution_shape(self, mnist_framework):
        probabilities = mnist_framework.bit_distribution()
        assert probabilities.shape == (8,)
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_average_bit_probability(self, mnist_framework):
        assert 0.2 < mnist_framework.average_bit_probability() < 0.8

    def test_weight_words_count(self, mnist_framework, mnist_network):
        assert mnist_framework.weight_words().size == mnist_network.weight_count

    def test_float32_distribution_wider(self, mnist_network):
        framework = DnnLife(mnist_network, data_format="float32", num_inferences=5)
        assert framework.bit_distribution().shape == (32,)

    def test_weights_attached_automatically(self):
        framework = DnnLife(custom_mnist_cnn(), num_inferences=5, seed=2)
        assert framework.network.has_weights_attached


class TestDnnLifeSimulation:
    def test_simulate_by_name(self, mnist_framework):
        result = mnist_framework.simulate("none")
        assert isinstance(result, AgingResult)
        assert result.policy_name == "none"

    def test_simulate_default_is_dnn_life(self, mnist_framework):
        assert mnist_framework.simulate().policy_name == "dnn_life"

    def test_simulate_policy_instance(self, mnist_framework):
        result = mnist_framework.simulate(NoMitigationPolicy())
        assert result.policy_name == "none"

    def test_simulate_kwargs_forwarded(self, mnist_framework):
        result = mnist_framework.simulate("dnn_life", trbg_bias=0.7, bias_balancing=False)
        assert result.policy_description["trbg_bias"] == 0.7
        assert result.policy_description["bias_balancing"] is False

    def test_dnn_life_improves_over_none(self, mnist_framework):
        baseline = mnist_framework.simulate("none")
        mitigated = mnist_framework.simulate("dnn_life")
        assert mitigated.snm_degradation().mean() < baseline.snm_degradation().mean()

    def test_compare_policies_default_suite(self, mnist_framework):
        comparison = mnist_framework.compare_policies()
        assert len(comparison.labels()) == 6
        assert "DNN-Life" in comparison.best_policy()

    def test_compare_policies_custom_list(self, mnist_framework):
        comparison = mnist_framework.compare_policies(["none", "dnn_life"])
        assert len(comparison.labels()) == 2

    def test_tpu_accelerator_supported(self, mnist_network):
        framework = DnnLife(mnist_network, accelerator=TpuLikeNpu(),
                            data_format="int8_symmetric", num_inferences=10, seed=0)
        result = framework.simulate("dnn_life")
        assert result.num_blocks == 4

    def test_describe(self, mnist_framework):
        description = mnist_framework.describe()
        assert description["network"] == "custom_mnist"
        assert description["accelerator"] == "baseline"
        assert description["data_format"] == "int8_symmetric"


class TestEnergyOverhead:
    def test_dnn_life_overhead_is_small(self, mnist_framework):
        overhead = mnist_framework.mitigation_energy_overhead("dnn_life")
        assert overhead["total_overhead_joules"] > 0
        assert overhead["overhead_percent_of_memory_energy"] < 25.0

    def test_barrel_shifter_transducers_cost_more_than_inversion(self, mnist_framework):
        barrel = mnist_framework.mitigation_energy_overhead("barrel_shifter")
        inversion = mnist_framework.mitigation_energy_overhead("inversion")
        assert barrel["transducer_energy_joules"] > inversion["transducer_energy_joules"]

    def test_no_mitigation_has_lowest_overhead(self, mnist_framework):
        none = mnist_framework.mitigation_energy_overhead("none")
        dnn_life = mnist_framework.mitigation_energy_overhead("dnn_life")
        assert none["total_overhead_joules"] < dnn_life["total_overhead_joules"]

    def test_group_enable_reduces_metadata_energy(self, mnist_framework):
        per_word = mnist_framework.mitigation_energy_overhead("dnn_life", words_per_enable=1)
        per_group = mnist_framework.mitigation_energy_overhead("dnn_life", words_per_enable=8)
        assert per_group["metadata_energy_joules"] < per_word["metadata_energy_joules"]


class TestPolicyComparison:
    def _result(self, name, duty):
        return AgingResult(policy_name=name, policy_description={"policy": name},
                           duty_cycles=np.asarray(duty), num_inferences=1, num_blocks=1)

    def test_add_and_labels(self):
        comparison = PolicyComparison(workload={"network": "x", "accelerator": "a",
                                                "data_format": "f"})
        comparison.add("none", self._result("none", [[0.0, 1.0]]))
        comparison.add("dnn_life", self._result("dnn_life", [[0.5, 0.5]]))
        assert comparison.labels() == ["none", "dnn_life"]
        assert comparison.best_policy() == "dnn_life"

    def test_duplicate_label_rejected(self):
        comparison = PolicyComparison(workload={})
        comparison.add("none", self._result("none", [[0.5]]))
        with pytest.raises(ValueError):
            comparison.add("none", self._result("none", [[0.5]]))

    def test_table_and_histograms(self):
        comparison = PolicyComparison(workload={"network": "n", "accelerator": "a",
                                                "data_format": "f"})
        comparison.add("none", self._result("none", [[0.0, 1.0, 0.5]]))
        table_text = comparison.table().render()
        assert "none" in table_text
        histograms = comparison.histograms()
        assert "none" in histograms
        assert sum(histograms["none"]["percent_of_cells"]) == pytest.approx(100.0)

    def test_best_policy_requires_results(self):
        with pytest.raises(ValueError):
            PolicyComparison(workload={}).best_policy()

    def test_summary_structure(self, mnist_framework):
        comparison = mnist_framework.compare_policies(["none", "dnn_life"])
        summary = comparison.summary()
        assert set(summary) == {"workload", "policies", "best_policy"}
        assert set(summary["policies"]) == set(comparison.labels())
