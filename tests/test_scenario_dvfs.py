"""DVFS scenario battery: cross-engine equivalence + golden regressions.

The two acceptance criteria of the operating-point layer:

* :class:`ScenarioAgingSimulator` and :class:`ExplicitScenarioSimulator` are
  bit-identical for deterministic policies across DVFS scenarios — per-phase
  and effective duty-cycles *and* the idle retention reports built from the
  exact last-written value of every cell — with and without wear levelers;
* a scenario pinned to the reference operating point reproduces the PR-4
  lifetime numbers exactly: the golden values below were computed at the
  pre-DVFS HEAD (commit ``19c8ed1``) and the effective
  :class:`~repro.core.simulation.AgingResult` payloads must stay
  byte-identical to them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.core.policies import make_policy
from repro.core.simulation import AgingSimulator, replay_inference
from repro.experiments.common import ExperimentScale
from repro.leveling import make_leveler
from repro.scenario import (
    ExplicitScenarioSimulator,
    LifetimeScenario,
    Phase,
    ScenarioAgingSimulator,
    ScenarioResult,
)
from repro.scenario.driver import scenario_stream_factory
from repro.utils.units import KB

#: Operating-point mixes exercising voltage-only, frequency-only and combined
#: suffixes, low-voltage idle corners, and every deterministic policy.
DVFS_SPECS = {
    "throttle_mix": ("custom_mnist:int8:inversion:4@85C@0.8V:0.5GHz,"
                     "idle:3@45C@0.62V:0.1GHz,"
                     "lenet5:int8:none:4@45C@0.95V:1.2GHz"),
    "sleepy_edge": ("custom_mnist:int8:barrel_shifter:5@85C@0.72V:0.8GHz,"
                    "idle:2@25C@0.6V:0.05GHz,"
                    "custom_mnist:int8:inversion_per_location:4@25C,"
                    "idle:2@45C@0.7V:0.2GHz"),
}


def small_factory(memory_kb=4, fifo_depth_tiles=4, seed=0):
    config = replace(baseline_config(), name="test_scenario_dvfs",
                     weight_memory_bytes=memory_kb * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    scale = ExperimentScale(num_inferences=10, max_weights_per_layer=10_000)
    return scenario_stream_factory(BaselineAccelerator(config=config),
                                   scale=scale, seed=seed)


@pytest.fixture(scope="module")
def factory():
    return small_factory()


@pytest.fixture(scope="module")
def geometry(factory):
    return factory(Phase.active("custom_mnist", "int8", "none", 1)).geometry


def _levelers(geometry):
    return {
        "none": lambda: None,
        "rotation": lambda: make_leveler("rotation", geometry, 4, period=3),
        "start_gap": lambda: make_leveler("start_gap", geometry, 4, interval=2),
        "wear_swap": lambda: make_leveler("wear_swap", geometry, 4, interval=2,
                                          swap_fraction=0.25),
    }


# --------------------------------------------------------------------------- #
# Cross-engine bit-identity under DVFS
# --------------------------------------------------------------------------- #
class TestDvfsEngineEquivalence:
    @pytest.mark.parametrize("spec_name", sorted(DVFS_SPECS))
    @pytest.mark.parametrize("leveler_name", ["none", "rotation", "start_gap",
                                              "wear_swap"])
    def test_packed_matches_explicit_bit_for_bit(self, factory, geometry,
                                                 spec_name, leveler_name):
        scenario = LifetimeScenario.from_spec(DVFS_SPECS[spec_name])
        build = _levelers(geometry)[leveler_name]
        packed = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0, leveler=build()).run()
        explicit = ExplicitScenarioSimulator(scenario, stream_factory=factory,
                                             seed=0, leveler=build()).run()
        assert np.array_equal(packed.effective.duty_cycles,
                              explicit.effective.duty_cycles)
        for fast, exact in zip(packed.phase_stress, explicit.phase_stress):
            assert np.array_equal(fast.duty, exact.duty)
            assert fast.voltage_v == exact.voltage_v
        assert packed.effective_years == explicit.effective_years
        # the retention reports are derived from the exact last-written
        # value of every physical cell — they must agree to the last float
        assert packed.phase_retention == explicit.phase_retention
        assert any(entry is not None for entry in packed.phase_retention)

    @pytest.mark.parametrize("policy", ["none", "inversion",
                                        "inversion_per_location",
                                        "barrel_shifter"])
    def test_held_bits_match_explicit_replay(self, factory, policy):
        # the packed engine's closed-form last-written values equal a direct
        # write-by-write replay of the same phase
        scenario = LifetimeScenario.from_spec(
            f"custom_mnist:int8:{policy}:5@85C@0.8V:0.5GHz,idle:2@45C@0.62V:0.1GHz")
        engine = ScenarioAgingSimulator(scenario, stream_factory=factory, seed=0)
        engine.run()
        stream = factory(scenario.phases[0])
        rows, word_bits = stream.geometry.rows, stream.geometry.word_bits
        replayed = make_policy(policy, word_bits, seed=0)
        replayed.reset()
        ones = np.zeros((rows, word_bits))
        writes = np.zeros(rows)
        stored = np.full((rows, word_bits), np.nan)
        for _ in range(5):
            replay_inference(stream, replayed, ones, writes, stored=stored)
        written = np.isfinite(stored).all(axis=1)
        assert np.array_equal(engine._held[written], stored[written])

    def test_stochastic_policy_runs_with_retention_on_both_engines(self, factory):
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:dnn_life:3@85C@0.8V:0.5GHz,idle:2@45C@0.65V:0.1GHz")
        for simulator_cls in (ScenarioAgingSimulator, ExplicitScenarioSimulator):
            result = simulator_cls(scenario, stream_factory=factory, seed=0).run()
            retention = result.phase_retention[1]
            assert retention is not None
            assert 0.0 <= retention["failure_probability_mean"] <= 1.0


# --------------------------------------------------------------------------- #
# Golden regressions: reference-point scenarios == PR-4 numbers, byte for byte
# --------------------------------------------------------------------------- #
class TestGoldenReferencePoint:
    #: (spec, effective AgingResult payload sha256, duty-matrix sha256,
    #:  exact effective years) — computed at the pre-DVFS HEAD (19c8ed1).
    GOLDEN = {
        "model_swap": (
            "custom_mnist:int8:inversion:4@85C,lenet5:int8:none:4@45C,"
            "lenet5:int8:inversion_per_location:3@85C",
            "961f1577980a1e6606717d2b93aff33012c74a916dd777809ec794ffd6a061c8",
            "b401a3edd3dea5080c146af9e3238a7e594fa7203912a506d9179c6a49b66d38",
            4.675473684222417),
        "idle_mix": (
            "custom_mnist:int8:barrel_shifter:5@85C,idle:3@45C,"
            "custom_mnist:int8:inversion:4@25C",
            "73543a659af2c602f6ec8051684b324b9827e7bfff9f36208a0089cb9a654fba",
            "149adbad16938ba93536bb0d7cc730367d3122d29f466d39ca4ae4daf64a2ee3",
            3.1152095361862115),
        "single": (
            "custom_mnist:int8:inversion:5",
            "5f1b3e319f35301cf340d0099fab3c3fbdc15134ea2fd89999e8c5ffd9dddcfc",
            "1c203647ace0b96df696a4f936137e71e1b226573d78439e166bc6c78e4add30",
            7.0),
    }

    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_aging_result_payload_is_byte_identical_to_pr4(self, factory, name):
        spec, payload_sha, duty_sha, years = self.GOLDEN[name]
        result = ScenarioAgingSimulator(LifetimeScenario.from_spec(spec),
                                        stream_factory=factory, seed=0).run()
        blob = json.dumps(result.effective.to_payload(), sort_keys=True).encode()
        assert hashlib.sha256(blob).hexdigest() == payload_sha
        duty = np.ascontiguousarray(result.effective.duty_cycles)
        assert hashlib.sha256(duty.tobytes()).hexdigest() == duty_sha
        assert result.effective_years == years

    def test_explicit_reference_point_pins_are_no_ops(self, factory):
        # pinning every phase to the reference corner explicitly must yield
        # the same duty and years as omitting the points entirely
        plain = LifetimeScenario.from_spec(self.GOLDEN["idle_mix"][0])
        pinned = LifetimeScenario.from_spec(
            "custom_mnist:int8:barrel_shifter:5@85C@0.9V:1GHz,"
            "idle:3@45C@0.9V:1GHz,custom_mnist:int8:inversion:4@25C@0.9V:1GHz")
        plain_result = ScenarioAgingSimulator(plain, stream_factory=factory,
                                              seed=0).run()
        pinned_result = ScenarioAgingSimulator(pinned, stream_factory=factory,
                                               seed=0).run()
        assert np.array_equal(plain_result.effective.duty_cycles,
                              pinned_result.effective.duty_cycles)
        assert plain_result.effective_years == pinned_result.effective_years


# --------------------------------------------------------------------------- #
# Frequency → wall-clock mapping
# --------------------------------------------------------------------------- #
class TestFrequencyMapping:
    def test_throttled_phase_spans_more_wall_clock(self):
        scenario = LifetimeScenario.from_spec(
            "lenet5:int8:none:10@85C@0.9V:0.5GHz,lenet5:int8:none:10@85C",
            years=6.0)
        slow, fast = scenario.phase_years()
        # 10 epochs at half clock span twice the wall time of 10 at reference
        assert slow == pytest.approx(4.0)
        assert fast == pytest.approx(2.0)

    def test_reference_frequency_reproduces_duration_shares_exactly(self):
        scenario = LifetimeScenario.from_spec(
            "lenet5:int8:none:6,idle:2,lenet5:int8:none:4", years=6.0)
        assert scenario.phase_years() == [3.0, 1.0, 2.0]

    def test_uniform_throttle_changes_nothing(self):
        # scaling every phase's clock equally cancels in the normalisation
        scenario = LifetimeScenario.from_spec(
            "lenet5:int8:none:6@85C@0.9V:0.5GHz,idle:2@85C@0.9V:0.5GHz",
            years=4.0)
        reference = LifetimeScenario.from_spec(
            "lenet5:int8:none:6,idle:2", years=4.0)
        assert scenario.phase_years() == pytest.approx(reference.phase_years())

    def test_default_operating_point_respects_explicit_pins(self):
        scenario = LifetimeScenario.from_spec(
            "lenet5:int8:none:4@85C@0.8V:0.25GHz,idle:4")
        repinned = scenario.with_default_operating_point(0.72, 0.5)
        assert repinned.phases[0].voltage_v == 0.8  # explicit pin kept
        assert repinned.phases[1].voltage_v == 0.72
        assert repinned.phases[1].frequency_ghz == 0.5

    def test_default_operating_point_at_reference_is_identity(self):
        scenario = LifetimeScenario.from_spec("lenet5:int8:none:4,idle:4")
        assert scenario.with_default_operating_point(0.9, 1.0) is scenario


# --------------------------------------------------------------------------- #
# Voltage → aging acceleration through the whole stack
# --------------------------------------------------------------------------- #
class TestVoltageAging:
    def test_undervolted_timeline_ages_slower(self, factory):
        base = "custom_mnist:int8:none:4@85C"
        low = ScenarioAgingSimulator(
            LifetimeScenario.from_spec(f"{base}@0.72V:1GHz"),
            stream_factory=factory, seed=0).run()
        ref = ScenarioAgingSimulator(
            LifetimeScenario.from_spec(base), stream_factory=factory,
            seed=0).run()
        high = ScenarioAgingSimulator(
            LifetimeScenario.from_spec(f"{base}@1.0V:1GHz"),
            stream_factory=factory, seed=0).run()
        assert low.effective_years < ref.effective_years < high.effective_years
        assert ref.effective_years == 7.0
        # duty is a write-stream property — voltage must not touch it
        assert np.array_equal(low.effective.duty_cycles,
                              ref.effective.duty_cycles)

    def test_lifetime_estimator_sees_voltage_through_phase_stress(self, factory):
        from repro.aging.lifetime import LifetimeEstimator

        scenario = LifetimeScenario.from_spec("custom_mnist:int8:none:4@85C")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        estimator = LifetimeEstimator(snm_model=result.effective.snm_model)
        reference = estimator.memory_lifetime_years_phases(
            result.phase_stress, scaling=result.scaling)
        undervolted = [replace(stress) for stress in result.phase_stress]
        for stress in undervolted:
            stress.voltage_v = 0.72
        longer = estimator.memory_lifetime_years_phases(
            undervolted, scaling=result.scaling)
        assert longer > reference

    def test_payload_round_trip_preserves_operating_points(self, factory):
        scenario = LifetimeScenario.from_spec(DVFS_SPECS["throttle_mix"])
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        rebuilt = ScenarioResult.from_payload(
            json.loads(json.dumps(result.to_payload())))
        for original, restored in zip(result.phase_stress, rebuilt.phase_stress):
            assert original.voltage_v == restored.voltage_v
        assert rebuilt.phase_retention == result.phase_retention
        assert rebuilt.scaling == result.scaling
        rows = rebuilt.phase_rows()
        assert any("retention" in row for row in rows)


# --------------------------------------------------------------------------- #
# Retention semantics
# --------------------------------------------------------------------------- #
class TestRetentionSemantics:
    def test_low_voltage_idle_is_riskier_than_nominal(self, factory):
        def idle_retention(idle_suffix):
            scenario = LifetimeScenario.from_spec(
                f"custom_mnist:int8:inversion:4@85C,idle:3@45C{idle_suffix}")
            result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                            seed=0).run()
            return result.phase_retention[1]

        nominal = idle_retention("")
        low = idle_retention("@0.62V:0.1GHz")
        assert low["failure_probability_mean"] > nominal["failure_probability_mean"]
        assert nominal["failure_probability_mean"] < 1e-3

    def test_retention_tracks_all_written_cells(self, factory, geometry):
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:none:3,idle:2@45C@0.7V:0.5GHz")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        retention = result.phase_retention[1]
        assert retention["cells_tracked"] == geometry.rows * geometry.word_bits

    def test_consecutive_idles_report_independently(self, factory):
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:none:3,idle:2@45C@0.7V:0.5GHz,"
            "idle:2@45C@0.62V:0.1GHz")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        first, second = result.phase_retention[1], result.phase_retention[2]
        assert first["operating_point"]["voltage_v"] == 0.7
        assert second["operating_point"]["voltage_v"] == 0.62
        assert (second["failure_probability_mean"]
                > first["failure_probability_mean"])

    def test_active_phases_report_no_retention(self, factory):
        scenario = LifetimeScenario.from_spec(
            "custom_mnist:int8:none:3,idle:2,custom_mnist:int8:none:3")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        assert result.phase_retention[0] is None
        assert result.phase_retention[2] is None
        assert result.phase_retention[1] is not None

    def test_degenerate_single_phase_equals_classic_simulator(self, factory):
        # the held-bits tracking must not perturb the counts path
        scenario = LifetimeScenario.from_spec("custom_mnist:int8:barrel_shifter:5")
        result = ScenarioAgingSimulator(scenario, stream_factory=factory,
                                        seed=0).run()
        stream = factory(scenario.phases[0])
        classic = AgingSimulator(stream, make_policy("barrel_shifter", 8, seed=0),
                                 num_inferences=5, seed=0).run()
        assert np.array_equal(result.effective.duty_cycles, classic.duty_cycles)


# --------------------------------------------------------------------------- #
# Experiment + CLI integration
# --------------------------------------------------------------------------- #
class TestDvfsExperiment:
    SPEC = ("custom_mnist:int8:inversion:3@85C@0.8V:0.5GHz,"
            "idle:2@45C@0.65V:0.1GHz,custom_mnist:int8:none:3@45C")

    def test_voltage_axis_changes_acceleration(self):
        from repro.orchestration import run_experiment

        base = {"spec": "custom_mnist:int8:none:3,idle:2",
                "weight_memory_kb": 4, "fifo_depth_tiles": 4}
        low = run_experiment("scenario", {**base, "voltage_v": 0.72})
        ref = run_experiment("scenario", base)
        assert (low.payload["effective"]["acceleration"]
                < ref.payload["effective"]["acceleration"])

    def test_frequency_axis_reshapes_wall_clock(self):
        from repro.orchestration import run_experiment

        run = run_experiment("scenario",
                             {"spec": "custom_mnist:int8:none:3,idle:3",
                              "weight_memory_kb": 4, "fifo_depth_tiles": 4,
                              "frequency_ghz": 0.5})
        # a uniform default frequency cancels in the normalisation
        years = [row["years"] for row in run.payload["phases"]]
        assert years[0] == pytest.approx(years[1])

    def test_payload_carries_wear_and_retention_sections(self):
        from repro.orchestration import run_experiment

        run = run_experiment("scenario", {"spec": self.SPEC,
                                          "weight_memory_kb": 4,
                                          "fifo_depth_tiles": 4})
        wear = run.payload["wear"]
        assert wear["num_regions"] == 4
        assert len(wear["timeline"]) == 3
        assert wear["per_phase"][1] is None  # idle holds previous wear
        assert wear["per_phase"][0]["render"].startswith("Wear map")
        idle_row = run.payload["phases"][1]
        assert idle_row["retention"]["operating_point"]["voltage_v"] == 0.65

    def test_renderer_shows_timeline_wear_and_retention(self):
        from repro.orchestration import render_experiment, run_experiment

        run = run_experiment("scenario", {"spec": self.SPEC,
                                          "weight_memory_kb": 4,
                                          "fifo_depth_tiles": 4})
        text = render_experiment(run)
        assert "region imbalance timeline" in text
        assert "Wear map" in text
        assert "retention @0.65V" in text
        assert "effective stress histogram" in text

    def test_cli_dvfs_spec_smoke(self, capsys):
        from repro.cli import main

        assert main(["--no-cache", "scenario", "--spec", self.SPEC,
                     "--memory-kb", "4", "--fifo-depth-tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "retention @0.65V" in out
        assert "region imbalance timeline" in out

    @pytest.mark.parametrize("argv,fragment", [
        (["scenario", "--spec", "custom_mnist:int8:none:3@0.7V:"],
         "invalid operating point"),
        (["scenario", "--spec", "custom_mnist:int8:none:3@1V:1GHz@2V:2GHz"],
         "multiple operating-point suffixes"),
        (["scenario", "--voltage", "-0.9"], "voltage_v"),
        (["sweep", "scenario", "--grid", "spec=;"], "has no values"),
    ])
    def test_usage_errors_are_one_line_exit_2(self, capsys, argv, fragment):
        from repro.cli import main

        assert main(argv) == 2
        err = capsys.readouterr().err.strip()
        assert fragment in err
        assert "Traceback" not in err
        assert "\n" not in err

    def test_multi_phase_spec_sweeps_through_escaped_axis(self, tmp_path):
        from repro.cli import main

        assert main(["--cache-dir", str(tmp_path), "sweep", "scenario",
                     "--grid",
                     "spec=;custom_mnist:int8:none:2,idle:2;custom_mnist:int8:inversion:2",
                     "--grid", "voltage_v=0.72,0.9",
                     "--grid", "weight_memory_kb=4",
                     "--grid", "fifo_depth_tiles=4",
                     "--workers", "1"]) == 0
