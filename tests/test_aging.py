"""Tests for repro.aging (SNM model, NBTI device model, Eq. 1/2, lifetime)."""

import numpy as np
import pytest

from repro.aging.lifetime import LifetimeEstimator, frequency_guardband_percent
from repro.aging.nbti import NbtiDeviceModel, ReactionDiffusionSnmModel
from repro.aging.probabilistic import (
    analytic_duty_cycle_histogram,
    duty_cycle_tail_probability,
    effective_num_blocks_with_shifts,
    empirical_tail_probability,
    expected_cells_at_tail,
    fig7_sweep,
    probability_at_least_n_cells,
)
from repro.aging.snm import (
    BEST_SNM_DEGRADATION_PERCENT,
    WORST_SNM_DEGRADATION_PERCENT,
    CalibratedSnmModel,
    bin_labels,
    default_degradation_bins,
    default_snm_model,
    degradation_histogram,
)


class TestCalibratedSnmModel:
    def test_anchor_points(self):
        model = default_snm_model()
        assert model.best_case_percent() == pytest.approx(BEST_SNM_DEGRADATION_PERCENT)
        assert model.worst_case_percent() == pytest.approx(WORST_SNM_DEGRADATION_PERCENT)
        assert model.degradation_percent(np.array([0.0]))[0] == pytest.approx(
            WORST_SNM_DEGRADATION_PERCENT)

    def test_symmetric_around_half(self):
        model = default_snm_model()
        duty = np.array([0.2, 0.8])
        degradation = model.degradation_percent(duty)
        assert degradation[0] == pytest.approx(degradation[1])

    def test_monotonic_in_stress(self):
        model = default_snm_model()
        duty = np.linspace(0.5, 1.0, 50)
        degradation = model.degradation_percent(duty)
        assert np.all(np.diff(degradation) >= 0)

    def test_minimum_at_half(self):
        model = default_snm_model()
        duty = np.linspace(0.0, 1.0, 101)
        degradation = model.degradation_percent(duty)
        assert degradation.argmin() == 50

    def test_time_scaling_follows_sixth_root(self):
        model = default_snm_model()
        at_7 = model.degradation_percent(np.array([1.0]), years=7.0)[0]
        at_14 = model.degradation_percent(np.array([1.0]), years=14.0)[0]
        assert at_14 / at_7 == pytest.approx(2 ** (1 / 6))

    def test_inverse(self):
        model = default_snm_model()
        stress = model.stress_fraction_for_degradation(BEST_SNM_DEGRADATION_PERCENT)
        assert stress == pytest.approx(0.5)

    def test_out_of_range_duty_rejected(self):
        with pytest.raises(ValueError):
            default_snm_model().degradation_percent(np.array([1.2]))

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ValueError):
            CalibratedSnmModel(best_percent=20.0, worst_percent=10.0)

    def test_histogram_helpers(self):
        model = default_snm_model()
        edges = default_degradation_bins(model, num_bins=4)
        assert edges.size == 5
        values = np.array([10.82, 26.12, 18.0])
        percentages, _ = degradation_histogram(values, edges)
        assert percentages.sum() == pytest.approx(100.0)
        labels = bin_labels(edges)
        assert len(labels) == 4 and "%" in labels[0]

    def test_histogram_empty_input(self):
        percentages, _ = degradation_histogram(np.array([]), [0, 1, 2])
        assert np.allclose(percentages, 0.0)


class TestNbtiDeviceModel:
    def test_reference_point_calibration(self):
        model = NbtiDeviceModel()
        dvth = model.delta_vth(np.array([1.0]), years=model.reference_years)[0]
        assert dvth == pytest.approx(model.reference_dvth_volts)

    def test_monotonic_in_stress_and_time(self):
        model = NbtiDeviceModel()
        assert model.delta_vth(np.array([0.9]), 7)[0] > model.delta_vth(np.array([0.1]), 7)[0]
        assert model.delta_vth(np.array([0.5]), 10)[0] > model.delta_vth(np.array([0.5]), 1)[0]

    def test_zero_stress_is_zero_shift(self):
        assert NbtiDeviceModel().delta_vth(np.array([0.0]), 7)[0] == 0.0

    def test_temperature_acceleration(self):
        model = NbtiDeviceModel()
        hot = model.delta_vth(np.array([1.0]), 7, temperature_kelvin=400.0)[0]
        cold = model.delta_vth(np.array([1.0]), 7, temperature_kelvin=300.0)[0]
        assert hot > cold

    def test_cell_worst_case_symmetric(self):
        model = NbtiDeviceModel()
        assert model.cell_worst_delta_vth(np.array([0.3]), 7)[0] == pytest.approx(
            model.cell_worst_delta_vth(np.array([0.7]), 7)[0])

    def test_invalid_stress_rejected(self):
        with pytest.raises(ValueError):
            NbtiDeviceModel().delta_vth(np.array([1.5]), 7)

    def test_reaction_diffusion_snm_model(self):
        model = ReactionDiffusionSnmModel()
        # Worst-case anchor is matched by construction; best case is better
        # than worst case and the curve is minimal at 50% duty-cycle.
        assert model.worst_case_percent() == pytest.approx(WORST_SNM_DEGRADATION_PERCENT)
        assert model.best_case_percent() < model.worst_case_percent()
        duty = np.linspace(0, 1, 21)
        degradation = model.degradation_percent(duty)
        assert degradation.argmin() == 10


class TestProbabilisticModel:
    def test_half_point_probability_is_one(self):
        assert duty_cycle_tail_probability(20, 0.5, 10) == 1.0

    def test_paper_case_study_k20(self):
        # Paper: "even for b/K = 0.3, the probability is over 0.1".
        assert duty_cycle_tail_probability(20, 0.5, 6) > 0.1

    def test_paper_case_study_k160_drops(self):
        p_k20 = duty_cycle_tail_probability(20, 0.5, 6)
        p_k160 = duty_cycle_tail_probability(160, 0.5, 48)
        assert p_k160 < p_k20 / 100

    def test_b_zero_matches_direct_formula(self):
        # P(all zeros or all ones) = 2 * 0.5^K for rho = 0.5.
        assert duty_cycle_tail_probability(10, 0.5, 0) == pytest.approx(2 * 0.5**10)

    def test_monotonic_in_b(self):
        probabilities = [duty_cycle_tail_probability(21, 0.5, b) for b in range(11)]
        assert all(a <= b + 1e-12 for a, b in zip(probabilities, probabilities[1:]))

    def test_biased_rho_increases_tail(self):
        assert (duty_cycle_tail_probability(20, 0.9, 4)
                > duty_cycle_tail_probability(20, 0.5, 4))

    def test_invalid_b_rejected(self):
        with pytest.raises(ValueError):
            duty_cycle_tail_probability(20, 0.5, 11)

    def test_eq2_limits(self):
        assert probability_at_least_n_cells(100, 0.5, 0) == 1.0
        assert probability_at_least_n_cells(100, 1.0, 100) == pytest.approx(1.0)
        assert probability_at_least_n_cells(100, 0.0, 1) == pytest.approx(0.0)

    def test_eq2_monotonic_in_n(self):
        values = [probability_at_least_n_cells(1000, 0.1, n) for n in (50, 100, 150, 200)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_expected_cells(self):
        assert expected_cells_at_tail(8192, 0.1) == pytest.approx(819.2)

    def test_fig7_sweep_shapes_and_endpoint(self):
        x, p = fig7_sweep(20, 0.5)
        assert x.size == 11 and p.size == 11
        assert p[-1] == 1.0
        assert np.all((p >= 0) & (p <= 1))

    def test_effective_k_with_shifts(self):
        # The paper's example: 7 shifts turn K=20 into K=160.
        assert effective_num_blocks_with_shifts(20, 7) == 160

    def test_empirical_tail_matches_analytic(self, rng):
        num_blocks = 20
        bits = rng.random((num_blocks, 20000)) < 0.5
        duty = bits.mean(axis=0)
        empirical = empirical_tail_probability(duty, 0.3)
        analytic = duty_cycle_tail_probability(num_blocks, 0.5, 6)
        assert empirical == pytest.approx(analytic, rel=0.1)

    def test_analytic_histogram_sums_to_one(self):
        masses = analytic_duty_cycle_histogram(20, 0.5, np.linspace(0, 1, 11))
        assert masses.sum() == pytest.approx(1.0)


class TestLifetime:
    def test_balanced_cells_live_longer(self):
        estimator = LifetimeEstimator(max_degradation_percent=15.0)
        balanced = estimator.memory_lifetime_years(np.array([0.5, 0.5]))
        stressed = estimator.memory_lifetime_years(np.array([0.0, 1.0]))
        assert balanced > stressed

    def test_lifetime_threshold_consistency(self):
        # A cell at 100% duty reaches 26.12% at 7 years, so with a threshold
        # equal to that value its lifetime is exactly 7 years.
        estimator = LifetimeEstimator(max_degradation_percent=26.12)
        assert estimator.memory_lifetime_years(np.array([1.0])) == pytest.approx(7.0, rel=1e-3)

    def test_improvement_factor(self):
        estimator = LifetimeEstimator()
        improvement = estimator.lifetime_improvement(np.array([1.0]), np.array([0.5]))
        assert improvement > 1.0

    def test_guardband_monotonic(self):
        guardbands = frequency_guardband_percent(np.array([10.0, 20.0, 26.0]))
        assert np.all(np.diff(guardbands) > 0)
