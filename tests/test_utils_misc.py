"""Tests for repro.utils.{validation, units, tables, serialization}."""

import numpy as np
import pytest

from repro.utils.serialization import load_json, save_json, to_jsonable
from repro.utils.tables import AsciiTable, format_histogram, format_series
from repro.utils.units import (
    KB,
    MB,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_energy,
    format_power,
    format_time,
    seconds_to_years,
    years_to_seconds,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
    check_power_of_two,
)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(3.5, "x") == 3.5

    def test_check_positive_rejects_zero_strict(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_check_positive_non_strict_accepts_zero(self):
        assert check_positive(0, "x", strict=False) == 0

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_check_in_range_inclusive(self):
        assert check_in_range(5, "x", low=5, high=10) == 5
        with pytest.raises(ValueError):
            check_in_range(5, "x", low=5, inclusive=False)

    def test_check_power_of_two(self):
        assert check_power_of_two(8, "x") == 8
        with pytest.raises(ValueError):
            check_power_of_two(6, "x")

    def test_check_positive_int_type(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")
        with pytest.raises(ValueError):
            check_positive_int(0, "x")


class TestUnits:
    def test_bit_byte_roundtrip(self):
        assert bytes_to_bits(512) == 4096
        assert bits_to_bytes(4096) == 512
        assert bits_to_bytes(4097) == 513  # rounds up

    def test_format_bytes(self):
        assert format_bytes(512 * KB) == "512.0 KB"
        assert format_bytes(4 * MB) == "4.0 MB"
        assert format_bytes(12) == "12 B"

    def test_format_energy_prefixes(self):
        assert "pJ" in format_energy(5e-12)
        assert "nJ" in format_energy(3e-9)
        assert "J" in format_energy(2.0)

    def test_format_power_prefixes(self):
        assert "nW" in format_power(345e-9)
        assert "mW" in format_power(1e-3)

    def test_format_time_prefixes(self):
        assert "ps" in format_time(977e-12)
        assert "ns" in format_time(5e-9)

    def test_years_seconds_roundtrip(self):
        assert seconds_to_years(years_to_seconds(7.0)) == pytest.approx(7.0)


class TestAsciiTable:
    def test_renders_headers_and_rows(self):
        table = AsciiTable(["a", "b"], title="demo")
        table.add_row(["x", 1.23456])
        text = table.render()
        assert "demo" in text and "a" in text and "x" in text
        assert "1.235" in text  # default precision of 3

    def test_row_length_mismatch_rejected(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_add_rows(self):
        table = AsciiTable(["a"])
        table.add_rows([[1], [2], [3]])
        assert len(table.rows) == 3

    def test_format_histogram(self):
        text = format_histogram(["low", "high"], [25.0, 75.0], title="h")
        assert "25.00%" in text and "75.00%" in text and "h" in text

    def test_format_histogram_length_mismatch(self):
        with pytest.raises(ValueError):
            format_histogram(["a"], [1.0, 2.0])

    def test_format_series(self):
        text = format_series([0, 1], [0.5, 0.25], x_name="x", y_name="y")
        assert "0.5000" in text and "0.2500" in text


class TestSerialization:
    def test_to_jsonable_handles_numpy(self):
        payload = {"a": np.float64(1.5), "b": np.arange(3), "c": np.bool_(True)}
        converted = to_jsonable(payload)
        assert converted == {"a": 1.5, "b": [0, 1, 2], "c": True}

    def test_save_and_load_roundtrip(self, tmp_path):
        data = {"x": [1, 2, 3], "y": {"z": 4.5}}
        path = save_json(data, tmp_path / "out" / "result.json")
        assert path.exists()
        assert load_json(path) == data

    def test_dataclass_serialization(self, tmp_path):
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: int
            y: float

        assert to_jsonable(Point(1, 2.5)) == {"x": 1, "y": 2.5}
