"""Tests for the DNN-Life hardware components: TRBG, bias balancer, controller,
write data encoder / read data decoder."""

import numpy as np
import pytest

from repro.core.bias_balancer import BiasBalancingRegister
from repro.core.controller import AgingMitigationController
from repro.core.encoder import ReadDataDecoder, WriteDataEncoder, roundtrip_is_transparent
from repro.core.trbg import IdealTrbg, RingOscillatorTrbg, make_trbg


class TestIdealTrbg:
    def test_bits_are_binary(self):
        bits = IdealTrbg(seed=0).bits(1000)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_unbiased_mean_near_half(self):
        assert abs(IdealTrbg(bias=0.5, seed=0).bits(50000).mean() - 0.5) < 0.01

    def test_biased_mean(self):
        assert abs(IdealTrbg(bias=0.7, seed=0).bits(50000).mean() - 0.7) < 0.01

    def test_nominal_bias_property(self):
        assert IdealTrbg(bias=0.7).nominal_bias == 0.7

    def test_deterministic_with_seed(self):
        assert np.array_equal(IdealTrbg(seed=5).bits(64), IdealTrbg(seed=5).bits(64))

    def test_draw_counter(self):
        trbg = IdealTrbg(seed=0)
        trbg.bits(10)
        trbg.next_bit()
        assert trbg.draws == 11

    def test_invalid_bias_rejected(self):
        with pytest.raises(ValueError):
            IdealTrbg(bias=1.5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            IdealTrbg(seed=0).bits(-1)


class TestRingOscillatorTrbg:
    def test_bits_are_binary(self):
        bits = RingOscillatorTrbg(seed=0).bits(2000)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_duty_cycle_controls_bias(self):
        biased = RingOscillatorTrbg(duty_cycle=0.7, seed=0).bits(20000)
        assert 0.6 < biased.mean() < 0.8

    def test_balanced_by_default(self):
        bits = RingOscillatorTrbg(seed=1).bits(20000)
        assert 0.45 < bits.mean() < 0.55

    def test_even_stage_count_rejected(self):
        with pytest.raises(ValueError):
            RingOscillatorTrbg(num_stages=4)

    def test_period_in_gate_delays(self):
        assert RingOscillatorTrbg(num_stages=5).oscillation_period_gate_delays == 10

    def test_zero_count(self):
        assert RingOscillatorTrbg(seed=0).bits(0).size == 0

    def test_factory(self):
        assert isinstance(make_trbg(model="ideal"), IdealTrbg)
        assert isinstance(make_trbg(model="ring_oscillator"), RingOscillatorTrbg)
        with pytest.raises(ValueError):
            make_trbg(model="quantum")


class TestBiasBalancingRegister:
    def test_period(self):
        register = BiasBalancingRegister(num_bits=4)
        assert register.period == 16
        assert register.half_period == 8

    def test_phase_toggles_every_half_period(self):
        register = BiasBalancingRegister(num_bits=4)
        phases = [register.tick() for _ in range(32)]
        # Counter counts 1..8 -> phase 1 appears when MSB set (count >= 8).
        assert phases[:7] == [0] * 7
        assert phases[7:15] == [1] * 8
        assert phases[15:23] == [0] * 8

    def test_phase_balanced_over_full_period(self):
        register = BiasBalancingRegister(num_bits=3)
        phases = [register.tick() for _ in range(8 * 10)]
        assert sum(phases) == len(phases) // 2

    def test_apply_and_apply_bits(self):
        register = BiasBalancingRegister(num_bits=1)
        assert register.apply(1) in (0, 1)
        register.tick()  # phase becomes 1 for M=1 after one tick
        assert register.phase == 1
        assert register.apply(1) == 0
        assert np.array_equal(register.apply_bits(np.array([0, 1, 1], dtype=np.uint8)),
                              np.array([1, 0, 0]))

    def test_apply_validates_input(self):
        register = BiasBalancingRegister()
        with pytest.raises(ValueError):
            register.apply(2)
        with pytest.raises(ValueError):
            register.apply_bits(np.array([0, 3]))

    def test_reset(self):
        register = BiasBalancingRegister(num_bits=2)
        register.tick()
        register.reset()
        assert register.count == 0 and register.phase == 0

    def test_phase_sequence_matches_ticks(self):
        register = BiasBalancingRegister(num_bits=4)
        expected = register.phase_sequence(0, 40)
        fresh = BiasBalancingRegister(num_bits=4)
        actual = np.array([fresh.tick() for _ in range(40)], dtype=np.uint8)
        assert np.array_equal(expected, actual)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            BiasBalancingRegister(num_bits=0)


class TestAgingMitigationController:
    def test_effective_bias_with_balancing(self):
        controller = AgingMitigationController(IdealTrbg(bias=0.7, seed=0),
                                               BiasBalancingRegister(4))
        assert controller.effective_bias == 0.5
        assert controller.has_bias_balancing

    def test_effective_bias_without_balancing(self):
        controller = AgingMitigationController(IdealTrbg(bias=0.7, seed=0))
        assert controller.effective_bias == 0.7
        assert not controller.has_bias_balancing

    def test_bias_balancing_fixes_long_run_mean(self):
        controller = AgingMitigationController(IdealTrbg(bias=0.8, seed=0),
                                               BiasBalancingRegister(4))
        samples = []
        for _ in range(2000):
            controller.new_data_block()
            samples.extend(controller.enable_bits(4))
        assert abs(np.mean(samples) - 0.5) < 0.03

    def test_without_balancing_mean_stays_biased(self):
        controller = AgingMitigationController(IdealTrbg(bias=0.8, seed=0))
        samples = []
        for _ in range(500):
            controller.new_data_block()
            samples.extend(controller.enable_bits(4))
        assert abs(np.mean(samples) - 0.8) < 0.05

    def test_counters(self):
        controller = AgingMitigationController(IdealTrbg(seed=0), BiasBalancingRegister(2))
        controller.new_data_block()
        controller.enable_bits(10)
        assert controller.blocks_seen == 1
        assert controller.enables_generated == 10
        controller.reset()
        assert controller.blocks_seen == 0 and controller.enables_generated == 0

    def test_default_controller_is_ideal_unbiased(self):
        controller = AgingMitigationController(seed=3)
        assert controller.trbg.nominal_bias == 0.5

    def test_describe(self):
        description = AgingMitigationController(IdealTrbg(bias=0.7, seed=0),
                                                BiasBalancingRegister(4)).describe()
        assert description["trbg_bias"] == 0.7
        assert description["bias_balancing"] is True
        assert description["bias_balancer_bits"] == 4


class TestWriteDataEncoder:
    def test_enable_zero_is_identity(self, rng):
        words = rng.integers(0, 256, size=64, dtype=np.uint64)
        encoder = WriteDataEncoder(8)
        assert np.array_equal(encoder.encode(words, 0), words)

    def test_enable_one_inverts(self):
        encoder = WriteDataEncoder(8)
        assert encoder.encode(np.array([0x0F]), 1)[0] == 0xF0

    def test_per_word_enable(self, rng):
        words = rng.integers(0, 256, size=10, dtype=np.uint64)
        enable = np.array([0, 1] * 5, dtype=np.uint8)
        encoded = WriteDataEncoder(8).encode(words, enable)
        assert np.array_equal(encoded[::2], words[::2])
        assert np.array_equal(encoded[1::2], words[1::2] ^ 0xFF)

    def test_roundtrip_transparency(self, rng):
        words = rng.integers(0, 2**32, size=200, dtype=np.uint64)
        enable = rng.integers(0, 2, size=200, dtype=np.uint8)
        assert roundtrip_is_transparent(words, enable, 32)

    def test_decoder_is_same_operation(self, rng):
        words = rng.integers(0, 256, size=32, dtype=np.uint64)
        enable = rng.integers(0, 2, size=32, dtype=np.uint8)
        encoded = WriteDataEncoder(8).encode(words, enable)
        decoded = ReadDataDecoder(8).decode(encoded, enable)
        assert np.array_equal(decoded, words)

    def test_activity_counters(self, rng):
        encoder = WriteDataEncoder(8)
        words = rng.integers(0, 256, size=100, dtype=np.uint64)
        enable = np.zeros(100, dtype=np.uint8)
        enable[:25] = 1
        encoder.encode(words, enable)
        assert encoder.words_encoded == 100
        assert encoder.words_inverted == 25
        assert encoder.inversion_rate == 0.25
        encoder.reset_counters()
        assert encoder.words_encoded == 0

    def test_enable_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            WriteDataEncoder(8).encode(rng.integers(0, 256, 10, dtype=np.uint64),
                                       np.array([0, 1, 0]))

    def test_invalid_enable_values_rejected(self, rng):
        with pytest.raises(ValueError):
            WriteDataEncoder(8).encode(rng.integers(0, 256, 3, dtype=np.uint64),
                                       np.array([0, 2, 1]))

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            WriteDataEncoder(65)


class TestEncoderCounterWidth:
    """The inversion counter must accumulate wide (DL003 regression)."""

    def test_words_inverted_exact_past_255(self):
        from repro.core.encoder import WriteDataEncoder

        encoder = WriteDataEncoder(word_bits=8)
        words = np.zeros(300, dtype=np.uint64)
        enable = np.ones(300, dtype=np.uint64)
        encoder.encode(words, enable)
        assert encoder.words_inverted == 300  # would wrap at 255 in uint8
        assert encoder.inversion_rate == pytest.approx(1.0)
