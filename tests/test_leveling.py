"""Tests for the wear-leveling remap engine (``repro.leveling``)."""

import numpy as np
import pytest

from repro.accelerator.scheduler import (
    CachedWeightStream,
    WeightStreamScheduler,
    stream_to_trace,
)
from repro.cli import main
from repro.core.policies import make_policy
from repro.core.simulation import AgingSimulator, ExplicitAgingSimulator
from repro.experiments.leveling import run_leveling_point
from repro.leveling import (
    LEVELER_CHOICES,
    RotationLeveler,
    StartGapLeveler,
    WearLeveler,
    WearSwapLeveler,
    check_permutation,
    make_leveler,
    mean_duty_per_row,
)
from repro.memory.geometry import MemoryGeometry
from repro.memory.sram import SramArray
from repro.memory.wear_map import WearMap
from repro.orchestration import REGISTRY, load_all_experiments
from repro.utils.units import KB


@pytest.fixture
def geometry():
    """A 32-row, 8-bit weight memory."""
    return MemoryGeometry(capacity_bytes=32, word_bits=8)


@pytest.fixture
def tiny_stream(tiny_network):
    """Tiny int8 workload on a 4 KB monolithic memory (several blocks)."""
    memory = MemoryGeometry(capacity_bytes=1 * KB, word_bits=8)
    scheduler = WeightStreamScheduler(tiny_network, "int8_symmetric", memory,
                                     parallel_filters=2)
    return CachedWeightStream(scheduler)


@pytest.fixture
def tiny_fifo_stream(tiny_network):
    """Tiny int8 workload on a 4-tile FIFO memory."""
    memory = MemoryGeometry(capacity_bytes=1 * KB, word_bits=8)
    scheduler = WeightStreamScheduler(tiny_network, "int8_symmetric", memory,
                                     parallel_filters=2, fifo_depth_tiles=4)
    return CachedWeightStream(scheduler)


class TestPermutations:
    def test_identity_leveler(self, geometry):
        leveler = make_leveler("none", geometry)
        assert np.array_equal(leveler.permutation(0), np.arange(32))
        assert list(leveler.spans(10)) == [(0, 10)]

    def test_rotation_stays_within_regions(self, geometry):
        leveler = RotationLeveler(geometry, fifo_depth_tiles=4, period=5, step=3)
        for epoch in range(12):
            permutation = check_permutation(leveler.permutation(epoch), 32)
            # A logical row's physical target never leaves its region (tile).
            assert np.array_equal(permutation // 8, np.arange(32) // 8)

    def test_rotation_period_one_is_identity(self, geometry):
        leveler = RotationLeveler(geometry, fifo_depth_tiles=2, period=1, step=7)
        for epoch in (0, 1, 5, 99):
            assert np.array_equal(leveler.permutation(epoch), np.arange(32))
        assert list(leveler.spans(20)) == [(0, 20)]

    def test_rotation_cycles_back_to_identity(self, geometry):
        leveler = RotationLeveler(geometry, period=4, step=1)
        assert np.array_equal(leveler.permutation(0), leveler.permutation(4))
        assert not np.array_equal(leveler.permutation(1), leveler.permutation(0))
        assert np.array_equal(leveler.permutation(1), np.roll(np.arange(32), -1))

    def test_start_gap_drifts_monotonically(self, geometry):
        leveler = StartGapLeveler(geometry, interval=2)
        assert np.array_equal(leveler.permutation(0), np.arange(32))
        assert np.array_equal(leveler.permutation(1), np.arange(32))
        assert np.array_equal(leveler.permutation(2), np.roll(np.arange(32), -1))
        assert np.array_equal(leveler.permutation(5), np.roll(np.arange(32), -2))
        # A full revolution returns to the identity.
        assert np.array_equal(leveler.permutation(2 * 32), np.arange(32))

    def test_spans_cover_the_horizon(self, geometry):
        for leveler in (RotationLeveler(geometry, period=3),
                        StartGapLeveler(geometry, interval=4),
                        WearSwapLeveler(geometry, interval=5)):
            spans = list(leveler.spans(17))
            assert spans[0][0] == 0
            assert sum(length for _, length in spans) == 17
            starts = [start for start, _ in spans]
            assert starts == sorted(starts)

    def test_wear_swap_moves_hot_to_cold(self, geometry):
        leveler = WearSwapLeveler(geometry, interval=1, swap_fraction=0.1)
        leveler.reset()
        stress = np.zeros(32)
        stress[3] = 1.0  # hottest physical row
        leveler.observe(1, stress)
        permutation = check_permutation(leveler.permutation(1), 32)
        # Logical row 3 now targets the (stable-argsort) coldest row 0.
        assert permutation[3] == 0
        assert permutation[0] == 3
        assert leveler.num_swaps_applied == 1

    def test_wear_swap_balanced_memory_keeps_identity(self, geometry):
        leveler = WearSwapLeveler(geometry, interval=1)
        leveler.reset()
        leveler.observe(1, np.full(32, 0.5))
        assert np.array_equal(leveler.permutation(1), np.arange(32))
        assert leveler.num_swaps_applied == 0

    def test_make_leveler_rejects_unknown(self, geometry):
        with pytest.raises(ValueError):
            make_leveler("bogus", geometry)
        with pytest.raises(TypeError):
            make_leveler("none", geometry, period=3)
        with pytest.raises(ValueError):
            WearSwapLeveler(geometry, swap_fraction=0.9)

    def test_check_permutation_rejects_non_bijections(self):
        with pytest.raises(ValueError):
            check_permutation(np.array([0, 0, 1]), 3)
        with pytest.raises(ValueError):
            check_permutation(np.array([0, 1, 3]), 3)
        with pytest.raises(ValueError):
            check_permutation(np.array([0, 1]), 3)


class TestEngineEquivalence:
    """Packed-with-remap must match the exact write-by-write reference."""

    @pytest.mark.parametrize("leveling,options", [
        ("rotation", {"period": 5, "step": 3}),
        ("start_gap", {"interval": 2}),
        ("wear_swap", {"interval": 3, "swap_fraction": 0.25}),
    ])
    @pytest.mark.parametrize("policy", ["none", "inversion",
                                        "inversion_per_location", "barrel_shifter"])
    def test_packed_matches_explicit(self, tiny_fifo_stream, leveling, options, policy):
        geometry = tiny_fifo_stream.geometry
        fast = AgingSimulator(
            tiny_fifo_stream, make_policy(policy, 8), num_inferences=7, seed=0,
            leveler=make_leveler(leveling, geometry, 4, **options)).run()
        exact = ExplicitAgingSimulator(
            tiny_fifo_stream, make_policy(policy, 8), num_inferences=7,
            leveler=make_leveler(leveling, geometry, 4, **options)).run()
        assert np.array_equal(fast.duty_cycles, exact.duty_cycles)

    def test_rotation_period_one_equals_no_leveling(self, tiny_stream):
        baseline = AgingSimulator(tiny_stream, make_policy("inversion", 8),
                                  num_inferences=6, seed=0).run()
        identity = AgingSimulator(
            tiny_stream, make_policy("inversion", 8), num_inferences=6, seed=0,
            leveler=make_leveler("rotation", tiny_stream.geometry, period=1)).run()
        assert np.array_equal(baseline.duty_cycles, identity.duty_cycles)

    def test_packed_matches_trace_replay(self, tiny_stream):
        """Closed-form remap composition == replaying the recorded trace."""
        num_inferences = 5
        scheduler = tiny_stream._scheduler
        trace = stream_to_trace(scheduler, num_inferences=num_inferences,
                                residency=1.0)
        geometry = tiny_stream.geometry
        for leveling, options in [("rotation", {"period": 3, "step": 2}),
                                  ("wear_swap", {"interval": 2,
                                                 "swap_fraction": 0.25})]:
            replayed = trace.replay(
                SramArray(geometry),
                leveler=make_leveler(leveling, geometry, **options),
                blocks_per_epoch=scheduler.num_blocks)
            fast = AgingSimulator(
                tiny_stream, make_policy("none", 8),
                num_inferences=num_inferences, seed=0,
                leveler=make_leveler(leveling, geometry, **options)).run()
            assert np.array_equal(fast.duty_cycles, replayed.duty_cycles())

    def test_trace_replay_swap_decisions_match_engines_on_fifo(self, tiny_fifo_stream):
        """Guided-swap permutations agree even where duty accounting differs.

        On a FIFO stream the regions are written at staggered times, so the
        array's residency-weighted duty differs from the engines' per-write
        counts (rows hold their initial zeros before the first write) — but
        the stress signal fed to the leveler is count-based in both paths,
        so the swap decisions must be bit-identical.
        """
        num_inferences = 6
        scheduler = tiny_fifo_stream._scheduler
        trace = stream_to_trace(scheduler, num_inferences=num_inferences)
        geometry = tiny_fifo_stream.geometry
        replay_leveler = make_leveler("wear_swap", geometry, 4, interval=2,
                                      swap_fraction=0.25)
        trace.replay(SramArray(geometry), leveler=replay_leveler,
                     blocks_per_epoch=scheduler.num_blocks)
        packed_leveler = make_leveler("wear_swap", geometry, 4, interval=2,
                                      swap_fraction=0.25)
        AgingSimulator(tiny_fifo_stream, make_policy("none", 8),
                       num_inferences=num_inferences, seed=0,
                       leveler=packed_leveler).run()
        assert replay_leveler.num_swaps_applied == packed_leveler.num_swaps_applied
        assert replay_leveler.num_swaps_applied > 0
        assert np.array_equal(replay_leveler._perm, packed_leveler._perm)

    def test_replay_with_leveler_requires_epoch_length(self, tiny_stream, geometry):
        trace = stream_to_trace(tiny_stream._scheduler, num_inferences=1)
        with pytest.raises(ValueError):
            trace.replay(SramArray(tiny_stream.geometry),
                         leveler=make_leveler("rotation", tiny_stream.geometry))

    def test_blockwise_engine_rejects_leveler(self, tiny_stream):
        with pytest.raises(NotImplementedError):
            AgingSimulator(tiny_stream, make_policy("none", 8),
                           engine="blockwise",
                           leveler=make_leveler("rotation", tiny_stream.geometry))

    def test_leveler_geometry_mismatch_rejected(self, tiny_stream, geometry):
        with pytest.raises(ValueError):
            AgingSimulator(tiny_stream, make_policy("none", 8),
                           leveler=make_leveler("rotation", geometry))

    def test_dnn_life_leveled_duty_stays_centred(self, tiny_stream):
        """The stochastic policy composes with leveling (distribution check)."""
        result = AgingSimulator(
            tiny_stream, make_policy("dnn_life", 8, seed=0),
            num_inferences=40, seed=0,
            leveler=make_leveler("rotation", tiny_stream.geometry, period=4)).run()
        assert abs(result.duty_cycles.mean() - 0.5) < 0.05
        assert result.policy_description["leveling"]["leveler"] == "rotation"

    def test_leveling_preserves_total_stress(self, tiny_stream):
        """Remapping moves stress between rows but conserves the totals."""
        baseline = AgingSimulator(tiny_stream, make_policy("none", 8),
                                  num_inferences=6, seed=0).run()
        leveled = AgingSimulator(
            tiny_stream, make_policy("none", 8), num_inferences=6, seed=0,
            leveler=make_leveler("start_gap", tiny_stream.geometry,
                                 interval=1)).run()
        assert not np.array_equal(baseline.duty_cycles, leveled.duty_cycles)
        # Every row of this stream is written equally often, so the physical
        # duty total equals the logical one.
        assert baseline.duty_cycles.sum() == pytest.approx(leveled.duty_cycles.sum())


class TestMeanDutyPerRow:
    def test_unwritten_rows_report_zero(self):
        ones = np.array([[1.0, 1.0], [0.0, 0.0]])
        hold = np.array([4.0, 0.0])
        assert np.array_equal(mean_duty_per_row(ones, hold), [0.5, 0.0])


class TestLevelingExperiment:
    def test_registered_and_sweepable(self):
        load_all_experiments()
        spec = REGISTRY.get("leveling")
        assert "sweep" in spec.tags
        assert set(spec.affinity) <= set(spec.param_names())
        assert spec.get_param("leveling").choices == LEVELER_CHOICES

    def test_wear_swap_reduces_region_imbalance(self):
        """Acceptance: guided swap beats the no-leveling baseline."""
        payload = run_leveling_point()  # defaults: lenet5, 8 KB x 4 tiles
        imbalance = payload["region_imbalance_pp"]
        assert imbalance["baseline"] > 0
        assert imbalance["leveled"] < imbalance["baseline"]
        assert imbalance["reduction"] > 0
        assert payload["workload"]["leveling"] == "wear_swap"

    def test_leveling_none_is_pure_baseline(self):
        payload = run_leveling_point(network="custom_mnist", weight_memory_kb=8,
                                     fifo_depth_tiles=2, leveling="none",
                                     num_inferences=3)
        assert payload["leveler"] == {"leveler": "none"}
        assert payload["region_imbalance_pp"]["reduction"] == 0.0
        assert payload["baseline"]["summary"] == payload["leveled"]["summary"]

    def test_payload_renders(self):
        payload = run_leveling_point(network="custom_mnist", weight_memory_kb=8,
                                     fifo_depth_tiles=2, leveling="rotation",
                                     leveling_period=2, num_inferences=3)
        from repro.experiments.leveling import render_leveling_point

        text = render_leveling_point(payload, {})
        assert "region_imbalance_pp" in text
        assert "Wear map" in text


class TestLevelingCli:
    def test_level_verb_smoke(self, capsys):
        assert main(["level", "--network", "custom_mnist", "--memory-kb", "8",
                     "--fifo-depth-tiles", "2", "--inferences", "3"]) == 0
        out = capsys.readouterr().out
        assert "region_imbalance_pp" in out
        assert "Wear map" in out

    def test_leveling_subcommand_matches_level(self, capsys):
        assert main(["leveling", "--network", "custom_mnist", "--memory-kb", "8",
                     "--fifo-depth-tiles", "2", "--inferences", "3"]) == 0
        assert "region_imbalance_pp" in capsys.readouterr().out

    def test_sweep_leveling(self, capsys):
        assert main(["sweep", "leveling",
                     "--grid", "network=custom_mnist",
                     "--grid", "weight_memory_kb=8",
                     "--grid", "fifo_depth_tiles=2",
                     "--grid", "num_inferences=3",
                     "--grid", "leveling=none,rotation,wear_swap",
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "3 jobs" in out


class TestWearSwapEffect:
    def test_swap_levels_synthetic_hot_region(self):
        """A deliberately skewed FIFO stream gets measurably flatter."""
        from repro.bench import SyntheticWeightStream

        geometry = MemoryGeometry(capacity_bytes=512, word_bits=8)
        stream = SyntheticWeightStream(geometry, num_blocks=6, fifo_depth_tiles=2,
                                       seed=0, probability_of_one=0.8)
        # Make region 0's blocks much denser than region 1's.
        stream._words[1::2] = 0
        stream._packed = None
        baseline = AgingSimulator(stream, make_policy("none", 8),
                                  num_inferences=16, seed=0).run()
        leveled = AgingSimulator(
            stream, make_policy("none", 8), num_inferences=16, seed=0,
            leveler=make_leveler("wear_swap", geometry, 2, interval=2,
                                 swap_fraction=0.5)).run()
        spread = lambda result: float(
            WearMap(result.duty_cycles, num_regions=2).summary()["region_imbalance_pp"])
        assert spread(leveled) < spread(baseline)
