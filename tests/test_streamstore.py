"""Tests for the content-addressed on-disk stream store.

The invariants pinned here are the store's reason to exist: a loaded entry
is *bitwise identical* to the build it replaces (golden SHA-256 digests),
every memory-mapped array honours the read-only aliasing contract, corrupt
or truncated entries degrade to a rebuild instead of an error, and two
processes racing on the same key settle on one valid entry.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.accelerator.scheduler import CachedWeightStream, PackedBitTensor
from repro.bench.aging_bench import SyntheticWeightStream
from repro.experiments.aging_runner import build_workload_stream, clear_stream_cache
from repro.experiments.common import ExperimentScale
from repro.memory.geometry import MemoryGeometry
from repro.streamstore import (
    ORPHAN_AGE_GUARD_SECONDS,
    STORE_SCHEMA,
    STREAM_STORE_ENV,
    StoredWeightStream,
    StreamStore,
    packed_content_sha256,
    resolve_stream_store,
    stream_code_version,
    stream_store_key,
    stream_store_stats,
    stream_store_stats_delta,
)
from repro.utils.units import KB


def synthetic_stream(memory_kb=1, word_bits=8, num_blocks=6, fifo_depth_tiles=1,
                     seed=0):
    geometry = MemoryGeometry(capacity_bytes=memory_kb * KB, word_bits=word_bits)
    return SyntheticWeightStream(geometry, num_blocks,
                                 fifo_depth_tiles=fifo_depth_tiles, seed=seed)


@pytest.fixture
def store(tmp_path):
    return StreamStore(tmp_path / "streams")


# --------------------------------------------------------------------------- #
# Keying
# --------------------------------------------------------------------------- #
class TestKeying:
    IDENTITY = {"network": "lenet5", "data_format": "int8_symmetric",
                "memory_kb": 16, "seed": 0}

    def test_key_is_stable(self):
        assert stream_store_key("workload", self.IDENTITY) \
            == stream_store_key("workload", self.IDENTITY)

    def test_key_changes_with_identity(self):
        for field, value in [("network", "alexnet"), ("memory_kb", 32),
                             ("seed", 1), ("data_format", "float32")]:
            changed = dict(self.IDENTITY, **{field: value})
            assert stream_store_key("workload", changed) \
                != stream_store_key("workload", self.IDENTITY), field

    def test_kind_namespaces_the_identity(self):
        assert stream_store_key("workload", self.IDENTITY) \
            != stream_store_key("synthetic", self.IDENTITY)

    def test_key_folds_in_stream_code_version(self, monkeypatch):
        from repro.streamstore import store as store_module

        baseline = stream_store_key("workload", self.IDENTITY)
        monkeypatch.setattr(store_module, "stream_code_version",
                            lambda: "deadbeefdeadbeef")
        assert stream_store_key("workload", self.IDENTITY) != baseline

    def test_stream_code_version_shape(self):
        version = stream_code_version()
        assert len(version) == 16
        int(version, 16)  # hex digest prefix


# --------------------------------------------------------------------------- #
# Round-trip identity
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    def test_bitwise_identity_and_manifest_sha(self, store):
        stream = synthetic_stream()
        packed = stream.packed_bits()
        built_sha = packed_content_sha256(packed)
        key = stream_store_key("synthetic", {"case": "roundtrip"})
        manifest_path = store.put(key, packed, describe=stream.describe())

        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema"] == STORE_SCHEMA
        assert manifest["payload_sha256"] == built_sha

        loaded = store.get(key)
        assert loaded is not None
        assert packed_content_sha256(loaded) == built_sha
        assert np.array_equal(loaded.bits, packed.bits)
        assert np.array_equal(loaded.valid_mask(), packed.valid_mask())
        assert np.array_equal(loaded.regions, packed.regions)
        assert np.array_equal(loaded.valid_words, packed.valid_words)
        assert loaded.geometry == packed.geometry
        assert loaded.fifo_depth_tiles == packed.fifo_depth_tiles

    def test_loaded_arrays_are_read_only_memmaps(self, store):
        packed = synthetic_stream().packed_bits()
        key = stream_store_key("synthetic", {"case": "readonly"})
        store.put(key, packed)
        loaded = store.get(key)
        for array in (loaded.bits, loaded.valid_mask(), loaded.regions,
                      loaded.valid_words):
            assert array.flags.writeable is False
            with pytest.raises(ValueError, match="read-only"):
                array[(0,) * array.ndim] = 1
        # the bits array is a zero-copy view over the file mapping
        import mmap

        base = loaded.bits
        while getattr(base, "base", None) is not None:
            base = base.base
        assert isinstance(base, (mmap.mmap, np.memmap))

    def test_loaded_stream_reconstructs_blocks(self, store):
        stream = synthetic_stream(fifo_depth_tiles=4, num_blocks=8)
        key = stream_store_key("synthetic", {"case": "blocks"})
        store.put(key, stream.packed_bits(), describe=stream.describe())
        loaded = store.load_stream(key)
        assert isinstance(loaded, StoredWeightStream)
        assert loaded.describe()["network"] == "synthetic"
        built_blocks = list(stream.iter_blocks())
        loaded_blocks = list(loaded.iter_blocks())
        assert len(built_blocks) == len(loaded_blocks)
        for built, reloaded in zip(built_blocks, loaded_blocks):
            assert np.array_equal(built.words, reloaded.words)
            assert built.region == reloaded.region
            assert reloaded.words.flags.writeable is False

    def test_network_stream_roundtrip(self, store, tiny_scheduler):
        stream = CachedWeightStream(tiny_scheduler)
        packed = stream.packed_bits()
        key = stream_store_key("workload", {"case": "tiny_cnn"})
        store.put(key, packed, describe=stream.describe())
        loaded = store.get(key)
        assert packed_content_sha256(loaded) == packed_content_sha256(packed)

    def test_put_is_idempotent(self, store):
        packed = synthetic_stream().packed_bits()
        key = stream_store_key("synthetic", {"case": "idempotent"})
        store.put(key, packed)
        store.put(key, packed)  # second writer discards
        assert store.puts == 1
        assert key in store
        assert packed_content_sha256(store.get(key)) \
            == packed_content_sha256(packed)

    def test_missing_key_is_a_plain_miss(self, store):
        assert store.get("0" * 64) is None
        assert store.misses == 1 and store.corrupt == 0


# --------------------------------------------------------------------------- #
# Golden digests across the benchmark-style geometries
# --------------------------------------------------------------------------- #
class TestGoldenShas:
    """Pinned payload digests of seeded synthetic streams.

    Mini versions of the bench-case geometries (the paper's 64-bit datapath
    word, int8 words, and the 4-tile FIFO organisation).  A digest change
    means the packed stream *content* changed — which must be deliberate,
    and invalidates stored entries via :func:`stream_code_version`.
    """

    GOLDEN = [
        ("mini_64bit", 2, 64, 4, 1,
         "d811fe82722032ea1aa4358a7f2302561df6e09eec4c6e6e0587bf2af5245017"),
        ("mini_8bit", 1, 8, 6, 1,
         "47eb359c94aa0f8724701b9e00e08554a9634ef49ccec116345451849c518045"),
        ("mini_8bit_fifo4", 1, 8, 8, 4,
         "74cdc10340c195dfbc0205ffc09a97f6da293668a7f612627d0a309c922b7c0e"),
    ]

    @pytest.mark.parametrize("name,memory_kb,word_bits,num_blocks,fifo,sha",
                             GOLDEN, ids=[row[0] for row in GOLDEN])
    def test_built_and_loaded_match_golden(self, tmp_path, name, memory_kb,
                                           word_bits, num_blocks, fifo, sha):
        stream = synthetic_stream(memory_kb=memory_kb, word_bits=word_bits,
                                  num_blocks=num_blocks, fifo_depth_tiles=fifo)
        packed = stream.packed_bits()
        assert packed_content_sha256(packed) == sha

        store = StreamStore(tmp_path / "golden")
        key = stream_store_key("synthetic", {"case": name})
        manifest_path = store.put(key, packed)
        assert json.loads(manifest_path.read_text())["payload_sha256"] == sha
        assert packed_content_sha256(store.get(key)) == sha


# --------------------------------------------------------------------------- #
# Corruption fallback
# --------------------------------------------------------------------------- #
class TestCorruption:
    def _put_one(self, store):
        stream = synthetic_stream()
        packed = stream.packed_bits()
        key = stream_store_key("synthetic", {"case": "corrupt"})
        store.put(key, packed)
        return key, packed

    def test_truncated_payload_is_a_counted_miss(self, store):
        key, _packed = self._put_one(store)
        payload_path = store.payload_path(key)
        payload_path.write_bytes(payload_path.read_bytes()[:100])
        assert store.get(key) is None
        assert store.corrupt == 1 and store.misses == 1

    def test_mangled_manifest_is_a_counted_miss(self, store):
        key, _packed = self._put_one(store)
        store.manifest_path(key).write_text("{not json")
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_schema_drift_reads_as_miss(self, store):
        key, _packed = self._put_one(store)
        manifest = json.loads(store.manifest_path(key).read_text())
        manifest["schema"] = "dnn-life-streamstore/v999"
        store.manifest_path(key).write_text(json.dumps(manifest))
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_corrupt_entry_is_repaired_by_rebuild(self, store):
        key, packed = self._put_one(store)
        payload_path = store.payload_path(key)
        payload_path.write_bytes(payload_path.read_bytes()[:10])
        assert store.get(key) is None  # drops the manifest...
        assert key not in store
        store.put(key, packed)  # ...so the rebuild's put repairs the entry
        assert packed_content_sha256(store.get(key)) \
            == packed_content_sha256(packed)


# --------------------------------------------------------------------------- #
# Concurrency
# --------------------------------------------------------------------------- #
def _race_put(root, barrier, sha_queue):
    """Child-process body of the write race (module-level: spawn-picklable)."""
    from repro.streamstore import StreamStore, packed_content_sha256, stream_store_key

    stream = synthetic_stream(num_blocks=8)
    packed = stream.packed_bits()
    store = StreamStore(root)
    key = stream_store_key("synthetic", {"case": "race"})
    barrier.wait(timeout=60)  # maximise overlap of the two writers
    store.put(key, packed)
    sha_queue.put(packed_content_sha256(store.get(key)))


class TestConcurrency:
    @pytest.mark.slow
    def test_two_process_write_race_settles_on_one_valid_entry(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        sha_queue = context.Queue()
        root = str(tmp_path / "race")
        workers = [context.Process(target=_race_put,
                                   args=(root, barrier, sha_queue))
                   for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

        shas = {sha_queue.get(timeout=10) for _ in range(2)}
        expected = packed_content_sha256(
            synthetic_stream(num_blocks=8).packed_bits())
        assert shas == {expected}  # both processes read one intact entry

        store = StreamStore(root)
        key = stream_store_key("synthetic", {"case": "race"})
        assert packed_content_sha256(store.get(key)) == expected
        assert not list(store.root.glob("**/*.tmp"))  # losers cleaned up


# --------------------------------------------------------------------------- #
# Maintenance: entries / stats / clear / gc
# --------------------------------------------------------------------------- #
class TestMaintenance:
    def test_entries_and_stats(self, store):
        stream = synthetic_stream()
        key = stream_store_key("synthetic", {"case": "stats"})
        store.put(key, stream.packed_bits(), describe=stream.describe())
        records = store.entries()
        assert len(records) == 1
        record = records[0]
        assert record["key"] == key
        assert record["nbytes"] == store.payload_path(key).stat().st_size
        assert record["geometry"]["word_bits"] == 8
        assert record["describe"]["network"] == "synthetic"
        stats = store.stats()
        assert stats["entries"] == 1 and stats["bytes"] == record["nbytes"]
        assert stats["puts"] == 1

    def test_clear_removes_everything(self, store):
        for seed in range(3):
            stream = synthetic_stream(seed=seed)
            store.put(stream_store_key("synthetic", {"seed": seed}),
                      stream.packed_bits())
        assert store.clear() == 3
        assert store.stats()["entries"] == 0
        assert not list(store.root.glob("??/*.bin"))

    def test_gc_removes_only_cold_entries(self, store):
        old_key = stream_store_key("synthetic", {"case": "old"})
        new_key = stream_store_key("synthetic", {"case": "new"})
        store.put(old_key, synthetic_stream(seed=1).packed_bits())
        store.put(new_key, synthetic_stream(seed=2).packed_bits())
        reference = 1_000_000.0
        os.utime(store.manifest_path(old_key), times=(reference - 500,
                                                      reference - 500))
        os.utime(store.manifest_path(new_key), times=(reference - 5,
                                                      reference - 5))
        assert store.gc(unused_seconds=100, now=reference) == 1
        assert old_key not in store and new_key in store

    def test_load_refreshes_last_used(self, store):
        key = stream_store_key("synthetic", {"case": "touch"})
        store.put(key, synthetic_stream().packed_bits())
        reference = 1_000_000.0
        os.utime(store.manifest_path(key), times=(reference - 500,
                                                  reference - 500))
        assert store.get(key) is not None  # load touches the manifest
        assert store.manifest_path(key).stat().st_mtime > reference - 500
        assert store.gc(unused_seconds=100, now=reference) == 0


# --------------------------------------------------------------------------- #
# Orphan reclamation (manifest-less payloads, crashed writers' temp files)
# --------------------------------------------------------------------------- #
def _race_gc(root, barrier):
    """Child-process body of the gc race (module-level: spawn-picklable)."""
    from repro.streamstore import StreamStore

    store = StreamStore(root)
    barrier.wait(timeout=60)  # maximise overlap of the two sweeps
    store.gc(unused_seconds=0.0, now=2_000_000.0)


class TestOrphanReclamation:
    REFERENCE = 1_000_000.0

    def _put_one(self, store, case="orphan"):
        stream = synthetic_stream()
        packed = stream.packed_bits()
        key = stream_store_key("synthetic", {"case": case})
        store.put(key, packed)
        return key, packed

    def _age(self, path, seconds_before_reference):
        stamp = self.REFERENCE - seconds_before_reference
        os.utime(path, times=(stamp, stamp))

    def test_corrupt_self_heal_drops_the_payload_too(self, store):
        # Regression: the self-heal used to unlink only the manifest,
        # stranding a payload no maintenance pass would ever reclaim.
        key, _packed = self._put_one(store)
        payload_path = store.payload_path(key)
        payload_path.write_bytes(payload_path.read_bytes()[:100])
        assert store.get(key) is None
        assert not store.manifest_path(key).exists()
        assert not payload_path.exists()
        assert store.stats()["orphan_bytes"] == 0

    def test_stats_reports_orphaned_footprint(self, store):
        key, _packed = self._put_one(store)
        nbytes = store.payload_path(key).stat().st_size
        store.manifest_path(key).unlink()  # strand the payload
        stats = store.stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert stats["orphan_bytes"] == nbytes

    def test_clear_ends_with_zero_bytes_under_the_root(self, store):
        # The acceptance battery: a live entry, a stranded payload, and
        # crashed-writer temp files must all be gone after clear().
        live_key, _ = self._put_one(store, case="live")
        stranded_key, _ = self._put_one(store, case="stranded")
        store.manifest_path(stranded_key).unlink()
        bucket = store.manifest_path(live_key).parent
        (bucket / "dead.bin.tmp").write_bytes(b"x" * 512)
        (bucket / "dead.json.tmp").write_text("{}")
        for path in store._orphan_paths():
            self._age(path, 2 * ORPHAN_AGE_GUARD_SECONDS)
        assert store.clear(now=self.REFERENCE) == 1  # only the live entry
        leftovers = [path for path in store.root.rglob("*")
                     if path.is_file() and path.name != "manifest.json"]
        assert leftovers == []
        assert store.stats()["bytes"] == 0
        assert store.stats()["orphan_bytes"] == 0

    def test_gc_collects_aged_tmp_but_spares_inflight_writers(self, store):
        key, _packed = self._put_one(store)
        bucket = store.manifest_path(key).parent
        old_tmp = bucket / "old.bin.tmp"
        fresh_tmp = bucket / "fresh.bin.tmp"
        old_tmp.write_bytes(b"x" * 256)
        fresh_tmp.write_bytes(b"y" * 256)
        self._age(store.manifest_path(key), 5.0)  # keep the live entry warm
        self._age(old_tmp, 2 * ORPHAN_AGE_GUARD_SECONDS)
        self._age(fresh_tmp, 10.0)  # inside the age guard: in-flight writer
        assert store.gc(unused_seconds=100, now=self.REFERENCE) == 0
        assert not old_tmp.exists()
        assert fresh_tmp.exists()
        assert key in store

    def test_sweep_counters_accumulate(self, store):
        bucket = store.root / "ab"
        bucket.mkdir(parents=True)
        for index in range(3):
            path = bucket / f"junk{index}.bin.tmp"
            path.write_bytes(b"z" * 100)
            self._age(path, 2 * ORPHAN_AGE_GUARD_SECONDS)
        swept = store.sweep_orphans(now=self.REFERENCE)
        assert swept == {"files": 3, "bytes": 300}
        assert store.orphan_files_reclaimed == 3
        assert store.orphan_bytes_reclaimed == 300
        assert store.sweep_orphans(now=self.REFERENCE) \
            == {"files": 0, "bytes": 0}

    @pytest.mark.slow
    def test_two_process_gc_race_tolerates_concurrent_deletion(self, tmp_path):
        root = tmp_path / "gc-race"
        store = StreamStore(root)
        self._put_one(store)
        bucket = next(iter(store._manifest_paths())).parent
        for index in range(64):
            path = bucket / f"orphan{index}.bin.tmp"
            path.write_bytes(b"r" * 64)
            os.utime(path, times=(self.REFERENCE, self.REFERENCE))
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        workers = [context.Process(target=_race_gc, args=(str(root), barrier))
                   for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0  # neither sweep tripped on the other
        assert not list(root.glob("??/*.tmp"))


# --------------------------------------------------------------------------- #
# Environment resolution and counter accounting
# --------------------------------------------------------------------------- #
class TestResolution:
    @pytest.mark.parametrize("value", ["0", "off", "none", "disabled",
                                       "false", " OFF "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(STREAM_STORE_ENV, value)
        assert resolve_stream_store() is None
        assert stream_store_stats() is None

    def test_explicit_path_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STREAM_STORE_ENV, "0")
        store = resolve_stream_store(tmp_path / "explicit")
        assert store is not None  # explicit root overrides the disable

    def test_env_path_is_used(self, monkeypatch, tmp_path):
        monkeypatch.setenv(STREAM_STORE_ENV, str(tmp_path / "from-env"))
        assert resolve_stream_store().root == tmp_path / "from-env"

    def test_default_follows_cache_dir_isolation(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STREAM_STORE_ENV, raising=False)
        monkeypatch.setenv("DNN_LIFE_CACHE_DIR", str(tmp_path / "cache"))
        assert resolve_stream_store().root == tmp_path / "cache" / "streams"

    def test_stores_are_memoized_per_root(self, tmp_path):
        assert resolve_stream_store(tmp_path / "a") \
            is resolve_stream_store(tmp_path / "a")
        assert resolve_stream_store(tmp_path / "a") \
            is not resolve_stream_store(tmp_path / "b")

    def test_stats_delta(self, store):
        before = stream_store_stats(store)
        stream = synthetic_stream()
        key = stream_store_key("synthetic", {"case": "delta"})
        assert store.get(key) is None  # miss
        store.put(key, stream.packed_bits())
        assert store.get(key) is not None  # hit
        delta = stream_store_stats_delta(before, stream_store_stats(store))
        assert delta == {"root": str(store.root), "hits": 1, "misses": 1,
                         "puts": 1, "corrupt": 0}

    def test_stats_delta_resets_on_root_change(self, tmp_path):
        before = stream_store_stats(StreamStore(tmp_path / "a"))
        other = StreamStore(tmp_path / "b")
        other.hits = 3
        delta = stream_store_stats_delta(before, stream_store_stats(other))
        assert delta["hits"] == 3  # absolute counters: different store


# --------------------------------------------------------------------------- #
# build_workload_stream integration (LRU x store layering)
# --------------------------------------------------------------------------- #
class TestWorkloadStreamIntegration:
    SCALE = ExperimentScale(num_inferences=2, max_weights_per_layer=2_000)

    @pytest.fixture(autouse=True)
    def _fresh_lru(self):
        clear_stream_cache()
        yield
        clear_stream_cache()

    def _build(self, accelerator, store):
        return build_workload_stream("custom_mnist", accelerator,
                                     "int8_symmetric", self.SCALE, seed=0,
                                     store=store)

    def test_lru_disabled_store_still_serves(self, monkeypatch, tmp_path,
                                             tiny_accelerator):
        """Regression: ``DNN_LIFE_STREAM_CACHE=0`` used to force a full
        rebuild per affinity batch; the store must now absorb those."""
        monkeypatch.setenv("DNN_LIFE_STREAM_CACHE", "0")
        store = StreamStore(tmp_path / "streams")
        first = self._build(tiny_accelerator, store)
        assert isinstance(first, CachedWeightStream)
        built_sha = packed_content_sha256(first.packed_bits())  # lazy offer
        assert store.puts == 1

        second = self._build(tiny_accelerator, store)
        assert isinstance(second, StoredWeightStream)  # no rebuild
        assert second is not first  # the LRU really was off
        assert packed_content_sha256(second.packed_bits()) == built_sha
        assert store.puts == 1 and store.hits >= 1

    def test_lru_hit_short_circuits_the_store(self, tmp_path, tiny_accelerator):
        store = StreamStore(tmp_path / "streams")
        first = self._build(tiny_accelerator, store)
        first.packed_bits()
        counters = (store.hits, store.misses)
        assert self._build(tiny_accelerator, store) is first
        assert (store.hits, store.misses) == counters  # untouched

    def test_reuse_false_bypasses_the_store(self, tmp_path, tiny_accelerator):
        store = StreamStore(tmp_path / "streams")
        stream = build_workload_stream("custom_mnist", tiny_accelerator,
                                       "int8_symmetric", self.SCALE, seed=0,
                                       reuse=False, store=store)
        stream.packed_bits()
        assert store.stats()["entries"] == 0  # never persisted

    def test_store_none_disables_persistence(self, tiny_accelerator,
                                             monkeypatch, tmp_path):
        monkeypatch.setenv(STREAM_STORE_ENV, str(tmp_path / "unused"))
        stream = self._build(tiny_accelerator, None)
        stream.packed_bits()
        assert not (tmp_path / "unused").exists()

    def test_store_env_auto_resolution(self, monkeypatch, tmp_path,
                                       tiny_accelerator):
        monkeypatch.setenv(STREAM_STORE_ENV, str(tmp_path / "auto"))
        monkeypatch.setenv("DNN_LIFE_STREAM_CACHE", "0")
        self._build(tiny_accelerator, "auto").packed_bits()
        reloaded = self._build(tiny_accelerator, "auto")
        assert isinstance(reloaded, StoredWeightStream)

    def test_loaded_stream_drives_the_simulator_identically(
            self, monkeypatch, tmp_path, tiny_accelerator):
        """An aging run on the memmapped stream must agree bit-for-bit with
        the same run on the freshly-built stream."""
        from repro.core.policies import make_policy
        from repro.core.simulation import AgingSimulator

        monkeypatch.setenv("DNN_LIFE_STREAM_CACHE", "0")
        store = StreamStore(tmp_path / "streams")
        built = self._build(tiny_accelerator, store)
        built.packed_bits()
        loaded = self._build(tiny_accelerator, store)
        assert isinstance(loaded, StoredWeightStream)

        def run(stream):
            policy = make_policy("inversion", stream.geometry.word_bits)
            return AgingSimulator(stream, policy, num_inferences=3, seed=0).run()

        assert np.array_equal(run(built).duty_cycles, run(loaded).duty_cycles)
