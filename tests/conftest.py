"""Shared fixtures for the test suite.

The fixtures deliberately use *small* networks and memories so that the whole
suite (including the explicit write-by-write simulations used to validate the
fast aging engine) runs in well under a minute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.scheduler import WeightStreamScheduler
from repro.accelerator.tpu import TpuLikeNpu
from repro.memory.geometry import MemoryGeometry
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Softmax
from repro.nn.models import build_model, custom_mnist_cnn, lenet5
from repro.nn.network import Network
from repro.nn.weights import attach_synthetic_weights


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the orchestration result cache at a per-test directory.

    Keeps CLI invocations inside tests from reading/writing the developer's
    ``~/.cache/dnn-life`` and from leaking cached results between tests.
    The stream store lives under the cache dir by default, so it is isolated
    by the same variable.
    """
    monkeypatch.setenv("DNN_LIFE_CACHE_DIR", str(tmp_path / "dnn-life-cache"))


@pytest.fixture(autouse=True)
def _restore_stream_store_env():
    """Undo ``DNN_LIFE_STREAM_STORE`` mutations after each test.

    ``dnn-life --stream-store/--no-stream-store`` exports the variable into
    ``os.environ`` on purpose (worker processes must inherit it), which would
    otherwise leak between tests that invoke the CLI.
    """
    import os

    saved = os.environ.get("DNN_LIFE_STREAM_STORE")
    yield
    if saved is None:
        os.environ.pop("DNN_LIFE_STREAM_STORE", None)
    else:
        os.environ["DNN_LIFE_STREAM_STORE"] = saved


@pytest.fixture
def rng():
    """A seeded random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_network():
    """A very small CNN with deterministic synthetic weights.

    Two convolutions and two fully-connected layers, ~3.5k weights: small
    enough for explicit write-by-write simulation, large enough to exercise
    the filter-set / tiling machinery with more than one block.
    """
    layers = [
        Conv2d(name="conv1", out_channels=4, in_channels=1, kernel_size=(3, 3)),
        ReLU(name="relu1"),
        MaxPool2d(name="pool1", kernel_size=2, stride=2),
        Conv2d(name="conv2", out_channels=8, in_channels=4, kernel_size=(3, 3)),
        ReLU(name="relu2"),
        Flatten(name="flatten"),
        Linear(name="fc1", out_features=16, in_features=8 * 11 * 11),
        ReLU(name="relu3"),
        Linear(name="fc2", out_features=4, in_features=16),
        Softmax(name="softmax"),
    ]
    network = Network(name="tiny_cnn", layers=layers, input_shape=(1, 28, 28), dataset="unit-test")
    return attach_synthetic_weights(network, seed=7)


@pytest.fixture
def mnist_network():
    """The paper's custom MNIST network with synthetic weights."""
    return attach_synthetic_weights(custom_mnist_cnn(), seed=0)


@pytest.fixture
def lenet_network():
    """LeNet-5 with synthetic weights."""
    return attach_synthetic_weights(lenet5(), seed=3)


@pytest.fixture
def tiny_accelerator_config():
    """A scaled-down accelerator (2 KB weight memory, 4 PEs x 4 multipliers)."""
    return AcceleratorConfig(
        name="tiny",
        weight_memory_bytes=2048,
        activation_memory_bytes=16 * 1024,
        num_pes=4,
        multipliers_per_pe=4,
        weight_fifo_depth_tiles=1,
    )


@pytest.fixture
def tiny_fifo_config():
    """A scaled-down FIFO-organised accelerator (4 tiles of 512 bytes)."""
    return AcceleratorConfig(
        name="tiny_fifo",
        weight_memory_bytes=2048,
        activation_memory_bytes=16 * 1024,
        num_pes=4,
        multipliers_per_pe=4,
        weight_fifo_depth_tiles=4,
    )


@pytest.fixture
def tiny_accelerator(tiny_accelerator_config):
    """Baseline-style accelerator with the tiny configuration."""
    return BaselineAccelerator(config=tiny_accelerator_config)


@pytest.fixture
def tiny_fifo_accelerator(tiny_fifo_config):
    """TPU-style accelerator with the tiny FIFO configuration."""
    return TpuLikeNpu(config=tiny_fifo_config)


@pytest.fixture
def tiny_scheduler(tiny_network, tiny_accelerator):
    """Weight-stream scheduler of the tiny network on the tiny accelerator."""
    return tiny_accelerator.build_scheduler(tiny_network, "int8_symmetric")


@pytest.fixture
def tiny_fp32_scheduler(tiny_network, tiny_accelerator):
    """Same workload but with 32-bit floating-point weights."""
    return tiny_accelerator.build_scheduler(tiny_network, "float32")


@pytest.fixture
def tiny_fifo_scheduler(tiny_network, tiny_fifo_accelerator):
    """Tiny workload on the FIFO-organised accelerator."""
    return tiny_fifo_accelerator.build_scheduler(tiny_network, "int8_symmetric")


@pytest.fixture
def small_geometry():
    """A 64-row, 8-bit weight memory (512 cells)."""
    return MemoryGeometry(capacity_bytes=64, word_bits=8)


@pytest.fixture(scope="session")
def alexnet_model():
    """AlexNet architecture (no weights attached) — session scoped, it is cheap."""
    return build_model("alexnet")
