"""Tests for the hardware cost substrate (Table II models)."""

import pytest

from repro.core.policies import (
    BarrelShifterPolicy,
    DnnLifePolicy,
    NoMitigationPolicy,
    PeriodicInversionPolicy,
)
from repro.hwsynth.components import (
    binary_counter,
    crossbar_barrel_shifter,
    enable_control_logic,
    logarithmic_barrel_shifter,
    pipeline_register,
    ring_oscillator_trbg,
    xor_inversion_array,
)
from repro.hwsynth.netlist import Netlist
from repro.hwsynth.synthesis import PAPER_TABLE2, synthesize, table2_ascii, table2_report
from repro.hwsynth.technology import CellKind, tsmc65_like_library
from repro.hwsynth.wde_designs import (
    barrel_shifter_wde,
    inversion_wde,
    proposed_dnn_life_wde,
    wde_for_policy,
)


class TestTechnologyLibrary:
    def test_all_cells_characterised(self):
        library = tsmc65_like_library()
        for kind in CellKind:
            cell = library.cell(kind)
            assert cell.area > 0 and cell.delay_ps > 0
            assert cell.switching_energy_fj > 0 and cell.leakage_nw > 0

    def test_relative_cell_costs_sane(self):
        library = tsmc65_like_library()
        assert library.cell(CellKind.XOR2).area > library.cell(CellKind.NAND2).area
        assert library.cell(CellKind.DFF).area > library.cell(CellKind.INV).area

    def test_unknown_cell_raises(self):
        library = tsmc65_like_library()
        library_without = type(library)(name="empty", nominal_voltage=1.2, cells={})
        with pytest.raises(KeyError):
            library_without.cell(CellKind.XOR2)

    def test_voltage_scaling(self):
        library = tsmc65_like_library()
        scaled = library.scale_voltage(0.9)
        assert scaled.cell(CellKind.XOR2).switching_energy_fj < \
            library.cell(CellKind.XOR2).switching_energy_fj
        assert scaled.cell(CellKind.XOR2).delay_ps > library.cell(CellKind.XOR2).delay_ps

    def test_invalid_voltage(self):
        with pytest.raises(ValueError):
            tsmc65_like_library().scale_voltage(0.0)


class TestNetlist:
    def test_area_and_cells(self):
        library = tsmc65_like_library()
        netlist = Netlist("n").add_cells(CellKind.XOR2, 10).add_cells(CellKind.DFF, 2)
        assert netlist.total_cells == 12
        expected_area = (10 * 2.2 + 2 * 4.0) * 1.1
        assert netlist.area(library) == pytest.approx(expected_area)

    def test_delay_follows_critical_path(self):
        library = tsmc65_like_library()
        netlist = Netlist("n").add_cells(CellKind.XOR2, 1)
        netlist.set_critical_path([CellKind.XOR2, CellKind.XOR2])
        assert netlist.delay_ps(library) == pytest.approx(2 * 45.0 + 2 * 5.0)

    def test_power_scales_with_frequency(self):
        library = tsmc65_like_library()
        netlist = Netlist("n").add_cells(CellKind.XOR2, 100)
        assert netlist.dynamic_power_nw(library, 1e9) == pytest.approx(
            2 * netlist.dynamic_power_nw(library, 0.5e9))

    def test_per_group_activity(self):
        library = tsmc65_like_library()
        quiet = Netlist("quiet").add_cells(CellKind.INV, 10, activity=0.0)
        busy = Netlist("busy").add_cells(CellKind.INV, 10, activity=1.0)
        assert quiet.energy_per_cycle_joules(library) == 0.0
        assert busy.energy_per_cycle_joules(library) > 0.0
        merged = quiet + busy
        assert merged.energy_per_cycle_joules(library) == pytest.approx(
            busy.energy_per_cycle_joules(library))

    def test_parallel_composition_adds_cells_keeps_longest_path(self):
        a = Netlist("a").add_cells(CellKind.INV, 3).set_critical_path([CellKind.INV])
        b = Netlist("b").add_cells(CellKind.XOR2, 2).set_critical_path(
            [CellKind.XOR2, CellKind.XOR2])
        merged = a + b
        assert merged.total_cells == 5
        assert merged.critical_path == [CellKind.XOR2, CellKind.XOR2]

    def test_cascade_concatenates_paths(self):
        a = Netlist("a").set_critical_path([CellKind.INV])
        b = Netlist("b").set_critical_path([CellKind.XOR2])
        assert a.cascade(b).critical_path == [CellKind.INV, CellKind.XOR2]

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            Netlist("n").dynamic_power_nw(tsmc65_like_library(), 0.0)

    def test_negative_cell_count_rejected(self):
        with pytest.raises(ValueError):
            Netlist("n").add_cells(CellKind.INV, -1)


class TestComponents:
    def test_xor_array_scales_linearly(self):
        assert (xor_inversion_array(64).cell_counts[CellKind.XOR2]
                == 2 * xor_inversion_array(32).cell_counts[CellKind.XOR2])

    def test_crossbar_scales_quadratically(self):
        assert (crossbar_barrel_shifter(64).cell_counts[CellKind.TGATE]
                == 4 * crossbar_barrel_shifter(32).cell_counts[CellKind.TGATE])

    def test_log_shifter_cheaper_than_crossbar(self):
        library = tsmc65_like_library()
        assert (logarithmic_barrel_shifter(64).area(library)
                < crossbar_barrel_shifter(64).area(library))

    def test_ring_oscillator_needs_odd_stages(self):
        with pytest.raises(ValueError):
            ring_oscillator_trbg(4)
        assert ring_oscillator_trbg(5).cell_counts[CellKind.INV] == 5

    def test_counter_and_register(self):
        assert binary_counter(4).cell_counts[CellKind.DFF] == 4
        assert pipeline_register(16).cell_counts[CellKind.DFF] == 16

    def test_enable_control_logic_has_path(self):
        assert len(enable_control_logic().critical_path) == 3


class TestWdeDesigns:
    def test_relative_area_matches_paper(self):
        barrel = barrel_shifter_wde().area_cell_units
        inversion = inversion_wde().area_cell_units
        proposed = proposed_dnn_life_wde().area_cell_units
        paper_barrel_ratio = PAPER_TABLE2["Barrel Shifter based WDE"]["area_cell_units"] / \
            PAPER_TABLE2["Inversion based WDE"]["area_cell_units"]
        # Ordering and order-of-magnitude: barrel is tens of times larger;
        # the proposed design is only slightly larger than plain inversion.
        assert barrel / inversion > 20
        assert barrel / inversion == pytest.approx(paper_barrel_ratio, rel=0.5)
        assert 1.0 < proposed / inversion < 2.0

    def test_relative_power_matches_paper(self):
        barrel = barrel_shifter_wde().power_nw
        inversion = inversion_wde().power_nw
        proposed = proposed_dnn_life_wde().power_nw
        assert barrel / inversion > 10
        assert 1.0 < proposed / inversion < 2.0

    def test_absolute_area_same_order_as_paper(self):
        for design, reference in (
                (barrel_shifter_wde(), PAPER_TABLE2["Barrel Shifter based WDE"]),
                (inversion_wde(), PAPER_TABLE2["Inversion based WDE"]),
                (proposed_dnn_life_wde(),
                 PAPER_TABLE2["Proposed WDE with Aging Mitigation Controller"])):
            assert reference["area_cell_units"] / 3 < design.area_cell_units \
                < reference["area_cell_units"] * 3

    def test_barrel_shifter_is_slowest(self):
        assert barrel_shifter_wde().delay_ps > inversion_wde().delay_ps
        assert barrel_shifter_wde().delay_ps > proposed_dnn_life_wde().delay_ps

    def test_energy_per_transfer_positive_and_ordered(self):
        assert (barrel_shifter_wde().energy_per_transfer_joules()
                > proposed_dnn_life_wde().energy_per_transfer_joules()
                > 0.0)

    def test_report_fields(self):
        report = inversion_wde().report()
        assert {"design", "delay_ps", "power_nw", "area_cell_units"} <= set(report)

    def test_table2_report_has_three_designs(self):
        rows = table2_report()
        assert len(rows) == 3
        assert {row["design"] for row in rows} == set(PAPER_TABLE2)

    def test_table2_ascii_mentions_paper_values(self):
        text = table2_ascii()
        assert "9035" in text and "Barrel" in text

    def test_synthesize_report(self):
        report = synthesize(xor_inversion_array(8))
        assert report.total_cells >= 8
        assert report.area_cell_units > 0

    def test_wde_for_policy_mapping(self):
        assert "Inversion" in wde_for_policy(PeriodicInversionPolicy(8), 8).name
        assert "Barrel" in wde_for_policy(BarrelShifterPolicy(8), 8).name
        assert "Proposed" in wde_for_policy(DnnLifePolicy(8, seed=0), 8).name
        assert "Pass-through" in wde_for_policy(NoMitigationPolicy(), 8).name

    def test_wde_for_policy_unknown_type(self):
        with pytest.raises(TypeError):
            wde_for_policy(object(), 8)

    def test_width_scaling(self):
        assert inversion_wde(128).area_cell_units > inversion_wde(64).area_cell_units
