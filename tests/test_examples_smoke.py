"""Smoke tests: the example scripts run end to end.

Only the two fastest examples are executed here (the figure-scale examples are
exercised through their underlying experiment drivers in test_experiments.py);
the goal is to catch import errors and API drift in the documented entry
points.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, argv=None, capsys=None):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_all_documented_examples_exist(self):
        expected = {
            "quickstart.py",
            "alexnet_weight_memory_aging.py",
            "tpu_npu_multi_network.py",
            "mitigation_hardware_costs.py",
            "transparent_inference.py",
            "wear_report_and_multi_tenant.py",
        }
        present = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert expected <= present

    @pytest.mark.slow
    def test_quickstart_runs(self, capsys):
        output = _run_example("quickstart.py", capsys=capsys)
        assert "best policy" in output
        assert "DNN-Life" in output
        assert "mitigation energy overhead" in output

    @pytest.mark.slow
    def test_transparent_inference_runs(self, capsys):
        output = _run_example("transparent_inference.py", capsys=capsys)
        assert "bit-identical" in output
        assert "inference outputs identical" in output
