"""Tests for repro.analysis (bit distributions, duty-cycle stats, energy)."""

import numpy as np
import pytest

from repro.analysis.bit_distribution import (
    analyze_network_bit_distribution,
    bit_distribution_table,
    format_balance_summary,
)
from repro.analysis.duty_cycle import (
    compare_duty_distributions,
    duty_cycle_histogram,
    duty_cycle_summary,
    policy_improvement_summary,
    tail_fraction,
)
from repro.analysis.energy import energy_overhead_report, energy_overhead_table
from repro.core.framework import DnnLife
from repro.core.simulation import AgingResult


def _result(name, duty):
    return AgingResult(policy_name=name, policy_description={"policy": name},
                       duty_cycles=np.asarray(duty, dtype=np.float64),
                       num_inferences=1, num_blocks=1)


class TestBitDistributionAnalysis:
    def test_all_formats_analyzed(self, mnist_network):
        results = analyze_network_bit_distribution(mnist_network)
        assert set(results) == {"float32", "int8_symmetric", "int8_asymmetric"}
        assert results["float32"].word_bits == 32
        assert results["int8_symmetric"].probabilities.shape == (8,)

    def test_probabilities_are_valid(self, mnist_network):
        for result in analyze_network_bit_distribution(mnist_network).values():
            assert np.all((result.probabilities >= 0) & (result.probabilities <= 1))

    def test_float32_exponent_msb_biased(self, mnist_network):
        result = analyze_network_bit_distribution(mnist_network, ["float32"])["float32"]
        # Bit-location 30 (exponent MSB) is essentially never 1 for trained-
        # like weights; low mantissa bit-locations are balanced.
        assert result.probabilities[30] < 0.02
        assert abs(result.probabilities[2] - 0.5) < 0.1
        assert not result.is_balanced

    def test_symmetric_int8_is_most_balanced(self, mnist_network):
        results = analyze_network_bit_distribution(mnist_network)
        assert (results["int8_symmetric"].max_deviation_from_half
                < results["float32"].max_deviation_from_half)

    def test_subsampling_consistency(self, mnist_network):
        full = analyze_network_bit_distribution(mnist_network, ["int8_symmetric"])
        subsampled = analyze_network_bit_distribution(mnist_network, ["int8_symmetric"],
                                                      max_weights_per_layer=5000)
        assert np.allclose(full["int8_symmetric"].probabilities,
                           subsampled["int8_symmetric"].probabilities, atol=0.1)

    def test_table_rendering(self, mnist_network):
        results = analyze_network_bit_distribution(mnist_network)
        text = bit_distribution_table(results).render()
        assert "bit-location" in text and "average" in text

    def test_balance_summary(self, mnist_network):
        summary = format_balance_summary(analyze_network_bit_distribution(mnist_network))
        for entry in summary.values():
            assert 0.0 <= entry["average_probability"] <= 1.0
            assert entry["balanced"] in (0.0, 1.0)

    def test_per_bit_dictionary(self, mnist_network):
        result = analyze_network_bit_distribution(mnist_network, ["int8_symmetric"])[
            "int8_symmetric"]
        per_bit = result.per_bit()
        assert set(per_bit) == set(range(8))


class TestDutyCycleAnalysis:
    def test_histogram_sums_to_100(self):
        percentages, edges = duty_cycle_histogram(np.array([0.0, 0.5, 0.5, 1.0]), num_bins=10)
        assert percentages.sum() == pytest.approx(100.0)
        assert edges.size == 11

    def test_summary_fields(self):
        summary = duty_cycle_summary(np.array([0.5, 0.4, 0.6, 0.0, 1.0]))
        assert summary["mean_duty"] == pytest.approx(0.5)
        assert summary["percent_at_extremes"] == pytest.approx(40.0)
        assert summary["max_abs_deviation"] == pytest.approx(0.5)

    def test_tail_fraction(self):
        duty = np.array([0.05, 0.5, 0.95, 0.3])
        assert tail_fraction(duty, 0.1) == pytest.approx(0.5)

    def test_policy_improvement(self):
        baseline = _result("none", [[0.0, 1.0]])
        mitigated = _result("dnn_life", [[0.5, 0.5]])
        improvement = policy_improvement_summary(baseline, mitigated)
        assert improvement["mean_degradation_reduction_pp"] > 10.0
        assert improvement["mitigated_mean_degradation"] == pytest.approx(10.82, abs=0.01)

    def test_compare_duty_distributions(self):
        comparison = compare_duty_distributions({
            "none": _result("none", [[0.0, 1.0, 0.5]]),
            "dnn_life": _result("dnn_life", [[0.5, 0.49, 0.51]]),
        })
        assert comparison["none"]["tail@0.1"] > comparison["dnn_life"]["tail@0.1"]


class TestEnergyAnalysis:
    def test_report_and_table(self, mnist_network):
        framework = DnnLife(mnist_network, data_format="int8_symmetric",
                            num_inferences=5, seed=0)
        report = energy_overhead_report(framework)
        assert set(report) == {"none", "inversion", "barrel_shifter", "dnn_life"}
        assert all(entry["overhead_percent_of_memory_energy"] >= 0 for entry in report.values())
        # The barrel shifter's transducers burn more energy than DNN-Life's.
        assert (report["barrel_shifter"]["transducer_energy_joules"]
                > report["dnn_life"]["transducer_energy_joules"])
        text = energy_overhead_table(framework).render()
        assert "overhead" in text
