"""Tests for the experiment drivers (figures/tables reproduction machinery).

The drivers are exercised on tiny workloads (LeNet/MNIST-class networks,
reduced weight budgets, few inferences) so this file stays fast; the
full-scale reproduction lives in the benchmark suite.
"""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_balance_register_sweep,
    run_bias_sweep,
    run_device_model_comparison,
    run_enable_granularity_sweep,
    run_energy_overhead_ablation,
    run_inversion_granularity_comparison,
    run_lifetime_improvement,
)
from repro.experiments.common import ExperimentScale, reduce_network
from repro.experiments.fig1 import render_fig1, run_fig1_access_energy, run_fig1_model_comparison
from repro.experiments.fig2 import render_fig2, run_fig2_snm_curve
from repro.experiments.fig6 import fig6_observations, run_fig6_bit_distributions
from repro.experiments.fig7 import render_fig7, run_fig7_case_study, run_fig7_probabilistic_model
from repro.experiments.fig9 import fig9_headline_claims, run_fig9_baseline_alexnet
from repro.experiments.fig11 import fig11_headline_claims, run_fig11_tpu_networks
from repro.experiments.table1 import render_table1, run_table1_configurations
from repro.experiments.table2 import run_table2_wde_costs, table2_relative_costs
from repro.nn.models import build_model
from repro.nn.weights import attach_synthetic_weights


class TestScaleHelpers:
    def test_quick_scale(self):
        scale = ExperimentScale.quick()
        assert scale.num_inferences < 100
        assert scale.max_weights_per_layer is not None

    def test_paper_scale(self):
        scale = ExperimentScale.paper()
        assert scale.num_inferences == 100
        assert scale.max_weights_per_layer is None

    def test_from_quick_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_EXPERIMENTS", raising=False)
        assert ExperimentScale.from_quick_flag(True).max_weights_per_layer is not None
        assert ExperimentScale.from_quick_flag(False).max_weights_per_layer is None

    def test_full_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_EXPERIMENTS", "1")
        assert ExperimentScale.from_quick_flag(True).max_weights_per_layer is None

    def test_reduce_network_caps_layers(self):
        network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
        reduced = reduce_network(network, max_weights_per_layer=1000)
        assert all(layer.weight_count <= 1000 for layer in reduced.weight_layers())
        assert reduced.weight_count < network.weight_count

    def test_reduce_network_none_is_identity(self):
        network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
        assert reduce_network(network, None) is network

    def test_reduce_network_preserves_filter_structure(self):
        network = attach_synthetic_weights(build_model("custom_mnist"), seed=0)
        reduced = reduce_network(network, max_weights_per_layer=5000)
        conv2 = [layer for layer in reduced.weight_layers() if layer.name == "conv2"][0]
        assert conv2.weight_shape[1:] == (16, 5, 5)


class TestFig1:
    def test_model_rows(self):
        rows = {row["network"]: row for row in run_fig1_model_comparison()}
        assert rows["vgg16"]["size_mb_float32"] > 500
        assert rows["googlenet"]["size_mb_float32"] < 40
        assert rows["resnet152"]["top1_accuracy_percent"] > rows["alexnet"]["top1_accuracy_percent"]

    def test_access_energy(self):
        energy = run_fig1_access_energy()
        assert energy["dram_to_sram_ratio"] > 50

    def test_render(self):
        text = render_fig1()
        assert "Fig. 1a" in text and "Fig. 1b" in text


class TestFig2:
    def test_curve_shape(self):
        rows = run_fig2_snm_curve(num_points=21)
        degradation = np.array([row["snm_degradation_percent"] for row in rows])
        assert degradation[0] == pytest.approx(26.12)
        assert degradation[10] == pytest.approx(10.82)
        assert degradation[-1] == pytest.approx(26.12)
        assert degradation.argmin() == 10

    def test_render(self):
        assert "SNM degradation" in render_fig2()


class TestFig6:
    def test_small_network_distributions(self):
        results = run_fig6_bit_distributions(networks=["custom_mnist"], quick=True)
        assert set(results["custom_mnist"]) == {"float32", "int8_symmetric", "int8_asymmetric"}

    @pytest.mark.slow
    def test_observations_structure(self):
        observations = fig6_observations(quick=True)
        for per_format in observations.values():
            for entry in per_format.values():
                assert 0.0 <= entry["average_probability"] <= 1.0


class TestFig7:
    def test_sweep_k_values(self):
        results = run_fig7_probabilistic_model()
        assert set(results) == {20, 160}
        assert len(results[20]) == 11
        assert results[20][-1]["probability"] == 1.0

    def test_case_study_claims(self):
        claims = run_fig7_case_study()
        assert claims["P(duty<=0.3 or >=0.7) @ K=20"] > 0.1
        assert claims["P(duty<=0.3 or >=0.7) @ K=160"] < 0.01

    def test_render(self):
        assert "K = 160" in render_fig7()


class TestFig9AndFig11:
    @pytest.mark.slow
    def test_fig9_reduced_run_headline_claims(self):
        # A heavily reduced configuration: LeNet-scale network budget keeps
        # this test fast while exercising the whole Fig. 9 pipeline.
        results = run_fig9_baseline_alexnet(data_formats=["float32", "int8_symmetric"],
                                            quick=True, seed=0, network_name="custom_mnist")
        claims = fig9_headline_claims(results)
        for per_format in claims.values():
            assert per_format["bias_balancing_helps"]
            assert per_format["dnn_life_balanced_mean"] <= per_format["no_mitigation_mean"] + 1e-9

    def test_fig9_histograms_sum_to_100(self):
        results = run_fig9_baseline_alexnet(data_formats=["int8_asymmetric"], quick=True,
                                            seed=0, network_name="custom_mnist")
        for per_policy in results.values():
            for entry in per_policy.values():
                assert sum(entry["histogram_percent"]) == pytest.approx(100.0)

    def test_fig11_custom_network_claims(self):
        results = run_fig11_tpu_networks(networks=["custom_mnist"], quick=True, seed=0)
        claims = fig11_headline_claims(results)["custom_mnist"]
        # The paper's observation: inversion collapses on the custom network
        # while DNN-Life stays near the minimum.
        assert claims["inversion_mean"] > 20.0
        assert claims["dnn_life_mean"] < 15.0
        assert claims["dnn_life_is_best"]


class TestTables:
    def test_table1_rows(self):
        rows = {row["name"]: row for row in run_table1_configurations()}
        assert rows["baseline"]["weight_memory_KB"] == 512
        assert rows["tpu_like_npu"]["parallel_filters_f"] == 256
        assert "alexnet" in rows["tpu_like_npu"]["networks"]

    def test_table1_render(self):
        assert "512" in render_table1()

    def test_table2_includes_paper_reference(self):
        rows = run_table2_wde_costs()
        assert all(row["paper_area_cell_units"] is not None for row in rows)

    def test_table2_relative_costs_reproduce_ordering(self):
        relative = table2_relative_costs()
        barrel = relative["Barrel Shifter based WDE"]
        proposed = relative["Proposed WDE with Aging Mitigation Controller"]
        assert barrel["area_vs_inversion"] > 10
        assert 1.0 < proposed["area_vs_inversion"] < 2.0
        assert barrel["paper_area_vs_inversion"] > 10


class TestAblations:
    def test_bias_sweep_monotone_without_balancing(self):
        results = run_bias_sweep(network_name="custom_mnist", biases=(0.5, 0.7, 0.9),
                                 bias_balancing=False, quick=True)
        means = [results[bias]["mean_snm_degradation_percent"] for bias in (0.5, 0.7, 0.9)]
        assert means[0] < means[1] < means[2]

    def test_balance_register_sweep_all_effective(self):
        results = run_balance_register_sweep(network_name="custom_mnist",
                                             register_bits=(2, 4), quick=True)
        for entry in results.values():
            assert entry["mean_snm_degradation_percent"] < 16.0

    def test_enable_granularity_tradeoff(self):
        results = run_enable_granularity_sweep(network_name="custom_mnist",
                                               group_sizes=(1, 8), quick=True)
        assert results[8]["metadata_bits_per_word"] < results[1]["metadata_bits_per_word"]

    def test_inversion_granularity_comparison(self):
        results = run_inversion_granularity_comparison(network_name="custom_mnist", quick=True)
        # The idealised per-location scheme balances better than the aliased
        # write-stream scheme on float32 weights.
        assert (results["location"]["mean_snm_degradation_percent"]
                <= results["write"]["mean_snm_degradation_percent"] + 1e-9)

    def test_device_model_comparison_preserves_ranking(self):
        results = run_device_model_comparison(quick=True)
        for per_policy in results.values():
            assert (per_policy["dnn_life"]["mean_snm_degradation_percent"]
                    < per_policy["none"]["mean_snm_degradation_percent"])

    def test_energy_overhead_ablation(self):
        report = run_energy_overhead_ablation(network_name="custom_mnist", num_inferences=2)
        assert report["dnn_life"]["overhead_percent_of_memory_energy"] < \
            report["barrel_shifter"]["overhead_percent_of_memory_energy"]

    def test_lifetime_improvement(self):
        result = run_lifetime_improvement(network_name="custom_mnist", quick=True)
        assert result["lifetime_improvement_factor"] > 1.0


class TestStreamCache:
    """The process-local workload-stream cache in aging_runner."""

    def _build(self, seed=0, memory_kb=16, reuse=True):
        from dataclasses import replace

        from repro.accelerator.baseline import BaselineAccelerator
        from repro.accelerator.config import baseline_config
        from repro.experiments.aging_runner import build_workload_stream
        from repro.experiments.common import ExperimentScale
        from repro.utils.units import KB

        config = replace(baseline_config(), name="cache_test",
                         weight_memory_bytes=memory_kb * KB)
        accelerator = BaselineAccelerator(config=config)
        scale = ExperimentScale(num_inferences=2, max_weights_per_layer=5_000)
        return build_workload_stream("lenet5", accelerator, "int8_symmetric",
                                     scale, seed=seed, reuse=reuse)

    def test_identical_workloads_share_one_stream(self):
        from repro.experiments.aging_runner import clear_stream_cache

        clear_stream_cache()
        first = self._build()
        assert self._build() is first
        # ... including the packed bit tensor hanging off it
        assert self._build().packed_bits() is first.packed_bits()

    def test_different_workloads_get_distinct_streams(self):
        from repro.experiments.aging_runner import clear_stream_cache

        clear_stream_cache()
        first = self._build(seed=0)
        assert self._build(seed=1) is not first
        assert self._build(memory_kb=32) is not first

    def test_reuse_false_bypasses_cache(self):
        from repro.experiments.aging_runner import clear_stream_cache

        clear_stream_cache()
        first = self._build()
        assert self._build(reuse=False) is not first

    def test_cache_size_env_bounds_entries(self, monkeypatch):
        from repro.experiments import aging_runner

        monkeypatch.setenv(aging_runner.STREAM_CACHE_SIZE_ENV, "1")
        aging_runner.clear_stream_cache()
        first = self._build(seed=0)
        self._build(seed=1)  # evicts seed=0 (capacity 1)
        assert len(aging_runner._STREAM_CACHE) == 1
        assert self._build(seed=0) is not first

    def test_cache_disabled_via_env(self, monkeypatch):
        from repro.experiments import aging_runner

        monkeypatch.setenv(aging_runner.STREAM_CACHE_SIZE_ENV, "0")
        aging_runner.clear_stream_cache()
        first = self._build()
        assert self._build() is not first
        assert len(aging_runner._STREAM_CACHE) == 0
