"""Fleet engine test battery: single-device equivalence + sampling determinism.

The fleet engine's acceptance contract (PR 6):

* a fleet of size 1 at the reference corner reproduces
  :class:`~repro.scenario.driver.ScenarioAgingSimulator`'s effective
  :class:`~repro.core.simulation.AgingResult` **byte for byte** — pinned as a
  golden sha over the sorted-JSON payload — and its failure-time composition
  exactly;
* an N-device cohort equals N independent scenario runs to tight tolerance
  across mitigation policies x wear levelers x operating corners (and
  *bitwise* when every device sits at the reference corner with degenerate
  spread distributions);
* sampling is deterministic: the same :class:`~repro.fleet.spec.FleetSpec`
  draws the same devices in any process, payloads round-trip exactly, and
  population quantiles are monotone in the quantile level and invariant
  under device permutation (hypothesis properties).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.config import baseline_config
from repro.experiments.common import ExperimentScale
from repro.fleet import (
    DEFAULT_QUANTILES,
    FleetResult,
    FleetSample,
    FleetSimulator,
    FleetSpec,
    failure_times_from_scenario_result,
    format_corner_spec,
    format_mix_spec,
    parse_corner_spec,
    parse_mix_spec,
)
from repro.leveling import make_leveler
from repro.scenario import Phase, ScenarioAgingSimulator
from repro.scenario.driver import scenario_stream_factory
from repro.utils.units import KB

#: A DVFS-rich single-device timeline: hot active stretch, a low-voltage
#: idle retention window pinning its own operating point, a cool tail.
SINGLE_SPEC = ("custom_mnist:int8:inversion:4@85C,"
               "idle:3@45C@0.7V:0.2GHz,"
               "lenet5:int8:none:4@45C")

#: Golden sha256 of the sorted-JSON effective AgingResult payload of
#: ``SINGLE_SPEC`` at seed 5 under the module's 4 KB stream factory —
#: computed from a direct ScenarioAgingSimulator run at this PR's HEAD; the
#: size-1 fleet cohort must reproduce it byte for byte.
GOLDEN_SINGLE_SHA = "e6a8532b6b861fe75c0a0cbe3a178c17cfd2b131a5b116829161babea9c674ae"


def small_factory(memory_kb=4, fifo_depth_tiles=4, seed=0):
    config = replace(baseline_config(), name="test_fleet",
                     weight_memory_bytes=memory_kb * KB,
                     weight_fifo_depth_tiles=fifo_depth_tiles)
    scale = ExperimentScale(num_inferences=10, max_weights_per_layer=10_000)
    return scenario_stream_factory(BaselineAccelerator(config=config),
                                   scale=scale, seed=seed)


@pytest.fixture(scope="module")
def factory():
    return small_factory()


@pytest.fixture(scope="module")
def geometry(factory):
    return factory(Phase.active("custom_mnist", "int8", "none", 1)).geometry


def payload_sha(payload) -> str:
    """sha256 over the canonical (sorted-key) JSON of a payload."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def reference_failure_times(fleet: FleetSimulator, sample: FleetSample,
                            device: int):
    """The per-device reference path: one plain scenario run per device."""
    engine = ScenarioAgingSimulator(
        fleet.device_scenario(sample, device),
        stream_factory=fleet.stream_factory,
        seed=fleet.device_seed(sample, device),
        snm_model=fleet.snm_model,
        leveler=fleet.leveler,
        scaling=fleet.scaling,
        retention_model=fleet.retention_model)
    return failure_times_from_scenario_result(
        engine.run(), usage=float(sample.usage[device]),
        max_degradation_percent=fleet.max_degradation_percent,
        reference_years=fleet.reference_years)


def assert_times_close(result: FleetResult, device: int, reference,
                       rtol: float = 0.0):
    """Compare one device's fleet times against its reference composition."""
    for key, values in (("snm_years", result.snm_years),
                        ("retention_years", result.retention_years),
                        ("failure_years", result.failure_years)):
        fleet_value = float(values[device])
        ref_value = float(reference[key])
        if rtol == 0.0:
            assert fleet_value == ref_value, (
                f"device {device} {key}: fleet {fleet_value!r} "
                f"!= reference {ref_value!r}")
        else:
            np.testing.assert_allclose(fleet_value, ref_value, rtol=rtol,
                                       err_msg=f"device {device} {key}")
    assert str(result.modes[device]) == reference["mode"]


# --------------------------------------------------------------------- #
# Single-device equivalence
# --------------------------------------------------------------------- #
class TestSingleDeviceEquivalence:
    def test_size1_fleet_reproduces_scenario_byte_for_byte(self, factory):
        spec = FleetSpec(num_devices=1, scenarios=(SINGLE_SPEC,), seed=5)
        fleet = FleetSimulator(spec, stream_factory=factory)
        result = fleet.run()

        direct = ScenarioAgingSimulator(
            spec.build_scenarios()[0], stream_factory=factory, seed=5,
            snm_model=fleet.snm_model, scaling=fleet.scaling,
            retention_model=fleet.retention_model).run()

        assert len(result.cohorts) == 1
        cohort_sha = payload_sha(result.cohorts[0]["effective"])
        assert cohort_sha == payload_sha(direct.effective.to_payload())
        assert cohort_sha == GOLDEN_SINGLE_SHA

        reference = failure_times_from_scenario_result(direct)
        assert_times_close(result, 0, reference, rtol=0.0)

    def test_reference_corner_fleet_is_bitwise_exact(self, factory):
        """Degenerate distributions at the reference corner: exact equality."""
        spec = FleetSpec(
            num_devices=6,
            scenarios=(SINGLE_SPEC, "lenet5:int8:barrel_shifter:5@85C,idle:2@45C"),
            seed_groups=2, seed=3)
        fleet = FleetSimulator(spec, stream_factory=factory)
        result = fleet.run()
        sample = result.sample
        assert np.all(sample.usage == 1.0)
        assert np.all(sample.temperature_offset_c == 0.0)
        for device in range(spec.num_devices):
            reference = reference_failure_times(fleet, sample, device)
            assert_times_close(result, device, reference, rtol=0.0)

    @pytest.mark.parametrize("policy,leveler_name", [
        ("none", "none"),
        ("inversion", "rotation"),
        ("inversion_per_location", "start_gap"),
        ("barrel_shifter", "wear_swap"),
        ("dnn_life", "none"),
    ])
    def test_cohort_matches_independent_runs(self, factory, geometry,
                                             policy, leveler_name):
        """N devices across corners/sigmas == N independent scenario runs."""
        mix = (
            f"custom_mnist:int8:{policy}:4@85C,idle:2@45C@0.7V:0.2GHz",
            f"lenet5:int8:{policy}:3@45C@0.95V:1.2GHz,idle:2@25C@0.6V:0.1GHz",
        )
        levelers = {
            "none": lambda: None,
            "rotation": lambda: make_leveler("rotation", geometry, 4, period=3),
            "start_gap": lambda: make_leveler("start_gap", geometry, 4,
                                              interval=2),
            "wear_swap": lambda: make_leveler("wear_swap", geometry, 4,
                                              interval=2, swap_fraction=0.25),
        }
        spec = FleetSpec(
            num_devices=8, scenarios=mix,
            corners=((0.9, 1.0), (0.8, 0.5), (0.95, 1.2)),
            usage_sigma=0.25, thermal_sigma_c=4.0,
            seed_groups=2, seed=11)
        fleet = FleetSimulator(spec, stream_factory=factory,
                               leveler=levelers[leveler_name]())
        result = fleet.run()
        for device in range(spec.num_devices):
            reference = reference_failure_times(fleet, result.sample, device)
            assert_times_close(result, device, reference, rtol=1e-9)

    def test_cohort_count_and_membership(self, factory):
        spec = FleetSpec(num_devices=16,
                         scenarios=(SINGLE_SPEC, "lenet5:int8:none:5@85C"),
                         seed_groups=2, seed=1)
        result = FleetSimulator(spec, stream_factory=factory).run()
        keys = {(entry["scenario_index"], entry["seed_group"])
                for entry in result.cohorts}
        sample = result.sample
        expected = set(zip(sample.scenario_index.tolist(),
                           sample.seed_group.tolist()))
        assert keys == expected
        assert sum(entry["num_devices"] for entry in result.cohorts) == 16
        for entry in result.cohorts:
            assert entry["seed"] == spec.group_seed(entry["seed_group"])


# --------------------------------------------------------------------- #
# Sampling determinism
# --------------------------------------------------------------------- #
SAMPLE_SUBPROCESS = """\
import json, sys
from repro.fleet import FleetSpec
spec = FleetSpec.from_payload(json.loads(sys.argv[1]))
print(json.dumps(spec.sample().to_payload(), sort_keys=True))
"""


class TestSamplingDeterminism:
    SPEC = FleetSpec(
        num_devices=32,
        scenarios=("custom_mnist:int8:none:3@85C", "lenet5:int8:inversion:4@45C"),
        scenario_weights=(0.75, 0.25),
        corners=((0.9, 1.0), (0.8, 0.5)),
        corner_weights=(0.5, 0.5),
        usage_sigma=0.3, thermal_sigma_c=5.0,
        seed_groups=3, seed=123)

    def test_same_seed_same_draws_in_process(self):
        assert self.SPEC.sample() == self.SPEC.sample()
        assert (FleetSpec.from_payload(self.SPEC.to_payload()).sample()
                == self.SPEC.sample())

    def test_different_seed_different_draws(self):
        other = replace(self.SPEC, seed=124)
        assert other.sample() != self.SPEC.sample()

    def test_same_seed_same_draws_across_processes(self):
        local = json.dumps(self.SPEC.sample().to_payload(), sort_keys=True)
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        remote = subprocess.run(
            [sys.executable, "-c", SAMPLE_SUBPROCESS,
             json.dumps(self.SPEC.to_payload())],
            capture_output=True, text=True, env=env, check=True)
        assert remote.stdout.strip() == local

    def test_degenerate_distributions_are_exact(self):
        spec = replace(self.SPEC, usage_sigma=0.0, thermal_sigma_c=0.0)
        sample = spec.sample()
        assert np.all(sample.usage == 1.0)
        assert np.all(sample.temperature_offset_c == 0.0)
        # Degenerate draws consume no generator state: the categorical draws
        # match the spread-out spec's exactly.
        spread = self.SPEC.sample()
        assert np.array_equal(sample.scenario_index, spread.scenario_index)
        assert np.array_equal(sample.corner_index, spread.corner_index)
        assert np.array_equal(sample.seed_group, spread.seed_group)


# --------------------------------------------------------------------- #
# Hypothesis properties
# --------------------------------------------------------------------- #
SCENARIO_POOL = (
    "custom_mnist:int8:none:3@85C",
    "lenet5:int8:inversion:4@45C",
    "custom_mnist:int8:dnn_life:5@85C,idle:2@45C",
    "lenet5:int8:barrel_shifter:2@25C",
)


@st.composite
def fleet_specs(draw):
    scenarios = tuple(draw(st.lists(st.sampled_from(SCENARIO_POOL),
                                    min_size=1, max_size=3, unique=True)))
    raw = draw(st.lists(st.integers(1, 9), min_size=len(scenarios),
                        max_size=len(scenarios)))
    total = sum(raw)
    weights = tuple(value / total for value in raw)
    num_corners = draw(st.integers(1, 3))
    corners = tuple((round(0.7 + 0.05 * draw(st.integers(0, 5)), 2),
                     round(0.25 * draw(st.integers(1, 6)), 2))
                    for _ in range(num_corners))
    return FleetSpec(
        num_devices=draw(st.integers(1, 64)),
        scenarios=scenarios,
        scenario_weights=weights,
        years=draw(st.sampled_from((3.0, 7.0, 10.0))),
        corners=corners,
        usage_sigma=draw(st.sampled_from((0.0, 0.2, 0.5))),
        thermal_sigma_c=draw(st.sampled_from((0.0, 3.0, 8.0))),
        seed_groups=draw(st.integers(1, 4)),
        seed=draw(st.integers(0, 2**31 - 1)))


class TestFleetSpecProperties:
    @settings(max_examples=40, deadline=None)
    @given(fleet_specs())
    def test_payload_round_trip(self, spec):
        assert FleetSpec.from_payload(spec.to_payload()) == spec
        # ...and through an actual JSON encode/decode (strict mode).
        via_json = json.loads(json.dumps(spec.to_payload(), allow_nan=False))
        assert FleetSpec.from_payload(via_json) == spec

    @settings(max_examples=25, deadline=None)
    @given(fleet_specs())
    def test_sampling_is_deterministic_and_in_range(self, spec):
        sample = spec.sample()
        assert sample == spec.sample()
        assert sample.num_devices == spec.num_devices
        assert np.all(sample.scenario_index >= 0)
        assert np.all(sample.scenario_index < len(spec.scenarios))
        assert np.all(sample.corner_index < len(spec.corners))
        assert np.all(sample.seed_group < spec.seed_groups)
        assert np.all(sample.usage > 0)
        assert FleetSample.from_payload(sample.to_payload()) == sample


@pytest.fixture(scope="module")
def tiny_result(factory):
    """One real FleetResult reused by the statistics / payload properties."""
    spec = FleetSpec(num_devices=10,
                     scenarios=(SINGLE_SPEC, "lenet5:int8:none:5@85C"),
                     corners=((0.9, 1.0), (0.8, 0.5)),
                     usage_sigma=0.2, thermal_sigma_c=3.0,
                     seed_groups=2, seed=7)
    return FleetSimulator(spec, stream_factory=factory).run()


class TestQuantileProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False), min_size=2, max_size=8),
           st.integers(0, 2**31 - 1))
    def test_monotone_in_level_and_permutation_invariant(
            self, tiny_result, times, levels, perm_seed):
        result = replace(tiny_result, failure_years=np.asarray(times))
        levels = sorted(levels)
        values = list(result.failure_quantiles(levels).values())
        assert all(later >= earlier
                   for earlier, later in zip(values, values[1:]))
        permutation = np.random.default_rng(perm_seed).permutation(len(times))
        shuffled = replace(tiny_result,
                           failure_years=np.asarray(times)[permutation])
        assert shuffled.failure_quantiles(levels) == result.failure_quantiles(levels)

    def test_default_quantile_labels(self, tiny_result):
        quantiles = tiny_result.failure_quantiles()
        assert list(quantiles) == [f"p{100 * q:g}" for q in DEFAULT_QUANTILES]

    def test_survival_curve_is_non_increasing(self, tiny_result):
        times, surviving = tiny_result.survival_curve()
        assert times[0] == 0.0
        assert surviving[0] == 1.0
        assert np.all(np.diff(surviving) <= 0)
        assert np.all((surviving >= 0) & (surviving <= 1))

    def test_mode_summary_counts_all_devices(self, tiny_result):
        assert sum(tiny_result.mode_summary().values()) == tiny_result.num_devices
        assert set(tiny_result.mode_summary()) <= {"snm", "retention"}


class TestResultPayload:
    def test_round_trip(self, tiny_result):
        payload = tiny_result.to_payload()
        json.dumps(payload, allow_nan=False)  # strict-JSON safe (inf -> null)
        rebuilt = FleetResult.from_payload(json.loads(json.dumps(payload)))
        assert rebuilt.spec == tiny_result.spec
        assert rebuilt.sample == tiny_result.sample
        for name in ("snm_years", "retention_years", "failure_years"):
            assert np.array_equal(getattr(rebuilt, name),
                                  getattr(tiny_result, name))
        assert np.array_equal(rebuilt.modes, tiny_result.modes)
        assert rebuilt.failure_quantiles() == tiny_result.failure_quantiles()
        assert rebuilt.max_degradation_percent == tiny_result.max_degradation_percent

    def test_infinite_times_encode_as_null(self, tiny_result):
        immortal = replace(tiny_result,
                           retention_years=np.full(tiny_result.num_devices,
                                                   np.inf))
        payload = immortal.to_payload()
        assert all(value is None for value in payload["retention_years"])
        rebuilt = FleetResult.from_payload(payload)
        assert np.all(np.isinf(rebuilt.retention_years))


# --------------------------------------------------------------------- #
# Spec-string mini-language + schema validation
# --------------------------------------------------------------------- #
class TestMixSpecs:
    def test_mix_round_trip(self):
        specs, weights = parse_mix_spec(
            "0.75*custom_mnist:int8:none:3@85C|0.25*lenet5:int8:inversion:4")
        assert specs == ("custom_mnist:int8:none:3@85C",
                         "lenet5:int8:inversion:4")
        assert weights == (0.75, 0.25)
        assert parse_mix_spec(format_mix_spec(specs, weights)) == (specs, weights)

    def test_unweighted_mix_is_uniform(self):
        _, weights = parse_mix_spec(
            "custom_mnist:int8:none:3|lenet5:int8:none:3")
        assert weights == (0.5, 0.5)

    def test_corner_round_trip(self):
        corners, weights = parse_corner_spec("0.6*0.9V:1GHz,0.4*0.8V:0.5GHz")
        assert corners == ((0.9, 1.0), (0.8, 0.5))
        assert weights == (0.6, 0.4)
        assert parse_corner_spec(format_corner_spec(corners, weights)) == (
            corners, weights)

    @pytest.mark.parametrize("text,fragment", [
        ("", "empty"),
        ("0.8*custom_mnist:int8:none:3|0.6*lenet5:int8:none:3", "sum to 1"),
        ("0.5*custom_mnist:int8:none:3|lenet5:int8:none:3", "every entry"),
        ("bogus:int8:none:3", "unknown"),
    ])
    def test_bad_mix_is_one_line_error(self, text, fragment):
        with pytest.raises(ValueError) as excinfo:
            parse_mix_spec(text)
        message = str(excinfo.value)
        assert fragment in message
        assert "\n" not in message

    def test_bad_corner_is_one_line_error(self):
        with pytest.raises(ValueError) as excinfo:
            parse_corner_spec("0.9V")
        assert "\n" not in str(excinfo.value)


class TestSpecValidation:
    def test_rejects_non_positive_devices(self):
        with pytest.raises(ValueError, match="num_devices"):
            FleetSpec(num_devices=0, scenarios=(SINGLE_SPEC,))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError, match="usage_sigma"):
            FleetSpec(num_devices=1, scenarios=(SINGLE_SPEC,), usage_sigma=-0.1)

    def test_rejects_weight_count_mismatch(self):
        with pytest.raises(ValueError, match="weights"):
            FleetSpec(num_devices=1, scenarios=(SINGLE_SPEC,),
                      scenario_weights=(0.5, 0.5))

    def test_rejects_weights_not_summing_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            FleetSpec(num_devices=4,
                      scenarios=(SINGLE_SPEC, "lenet5:int8:none:3"),
                      scenario_weights=(0.8, 0.6))

    def test_rejects_bad_phase_spec(self):
        with pytest.raises(ValueError):
            FleetSpec(num_devices=1, scenarios=("bogus:int8:none:3",))

    def test_rejects_non_positive_corner(self):
        with pytest.raises(ValueError, match="corner"):
            FleetSpec(num_devices=1, scenarios=(SINGLE_SPEC,),
                      corners=((0.0, 1.0),))
